"""Sweep3D numerics substrate: quadrature, geometry, kernels, solvers.

Implements the discrete-ordinates neutron-transport problem of the
paper's Sec. 3 from scratch: LQn angular quadrature, Pn scattering
moments, the diamond-difference cell solve with negative-flux fixups,
the MK/MMI pipelined tile sweep of Figure 2/3, and a serial reference
solver.
"""

from .flux import SolveResult, SweepTally, relative_change
from .geometry import Grid, hyperplanes, octant_direction, oriented_view
from .input import InputDeck, benchmark_deck, cube_deck, small_deck
from .kernel import CellResult, dd_line_block_solve, dd_solve, flops_per_cell
from .moments import MomentBasis, legendre_basis
from .pipelining import (
    BoundaryIO,
    LineBlock,
    LineExecutor,
    TileSweeper,
    VacuumBoundary,
    angle_blocks,
    diagonal_lines,
    diagonal_sizes,
    k_blocks,
    num_diagonals,
    numpy_line_executor,
)
from .deckfile import format_deck, load_deck, parse_deck, save_deck
from .dsa import DSAAccelerator, accelerated_solve
from .quadrature import (
    OCTANT_SIGNS,
    Ordinate,
    Quadrature,
    derive_class_weights,
    sweep3d_quadrature,
    weight_classes,
)
from .serial import SerialSweep3D
from .timestep import TimeDependentSweep3D, TimeStepResult, TransientResult
from . import verify

__all__ = [
    "BoundaryIO",
    "CellResult",
    "Grid",
    "InputDeck",
    "LineBlock",
    "LineExecutor",
    "MomentBasis",
    "OCTANT_SIGNS",
    "Ordinate",
    "Quadrature",
    "SerialSweep3D",
    "SolveResult",
    "SweepTally",
    "TileSweeper",
    "TimeDependentSweep3D",
    "TimeStepResult",
    "TransientResult",
    "DSAAccelerator",
    "VacuumBoundary",
    "accelerated_solve",
    "angle_blocks",
    "benchmark_deck",
    "cube_deck",
    "dd_line_block_solve",
    "dd_solve",
    "derive_class_weights",
    "diagonal_lines",
    "diagonal_sizes",
    "flops_per_cell",
    "format_deck",
    "load_deck",
    "parse_deck",
    "save_deck",
    "weight_classes",
    "hyperplanes",
    "k_blocks",
    "legendre_basis",
    "num_diagonals",
    "numpy_line_executor",
    "octant_direction",
    "oriented_view",
    "relative_change",
    "small_deck",
    "sweep3d_quadrature",
    "verify",
]
