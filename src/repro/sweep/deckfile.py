"""Input-deck file format: a readable stand-in for ``sweep3d.in``.

The original benchmark reads a terse column-oriented ``sweep3d.in``;
this reproduction uses an explicit ``key = value`` format so decks are
self-documenting and diffable:

.. code-block:: text

    # the paper's 50-cubed benchmark
    nx = 50
    ny = 50
    nz = 50
    dx = 1.0
    sn = 6
    nm = 4
    sigma_t = 1.0
    scattering_ratio = 0.5
    iterations = 12
    fixup = true
    mk = 10
    mmi = 3
    reflect_low = false false false

Unknown keys are rejected (typos in input decks are the classic silent
benchmark killer); every value passes through :class:`InputDeck`'s own
validation.
"""

from __future__ import annotations

import pathlib

from ..errors import InputDeckError
from .geometry import Grid
from .input import InputDeck

_BOOL = {"true": True, "false": False, "1": True, "0": False,
         "yes": True, "no": False}

#: key -> parser for scalar deck fields
_FIELDS = {
    "sn": int,
    "nm": int,
    "sigma_t": float,
    "scattering_ratio": float,
    "anisotropy": float,
    "source": float,
    "iterations": int,
    "epsilon": float,
    "fixup": None,  # bool, handled below
    "mk": int,
    "mmi": int,
    "material_sigma_t": float,
    "material_scattering_ratio": float,
}

_GRID_FIELDS = {"nx": int, "ny": int, "nz": int,
                "dx": float, "dy": float, "dz": float}


def _parse_bool(key: str, token: str) -> bool:
    try:
        return _BOOL[token.lower()]
    except KeyError:
        raise InputDeckError(f"{key}: expected a boolean, got {token!r}") from None


def parse_deck(text: str) -> InputDeck:
    """Parse deck text into a validated :class:`InputDeck`."""
    grid_kw: dict[str, float] = {}
    deck_kw: dict[str, object] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise InputDeckError(f"line {lineno}: expected 'key = value': {raw!r}")
        key, _, value = (part.strip() for part in line.partition("="))
        key = key.lower()
        try:
            if key in _GRID_FIELDS:
                grid_kw[key] = _GRID_FIELDS[key](value)
            elif key == "fixup":
                deck_kw["fixup"] = _parse_bool(key, value)
            elif key == "reflect_low":
                tokens = value.split()
                if len(tokens) != 3:
                    raise InputDeckError(
                        f"line {lineno}: reflect_low needs three booleans"
                    )
                deck_kw["reflect_low"] = tuple(
                    _parse_bool(key, t) for t in tokens
                )
            elif key in ("source_box", "material_box"):
                tokens = value.split()
                if len(tokens) != 6:
                    raise InputDeckError(
                        f"line {lineno}: {key} needs six cell bounds"
                    )
                deck_kw[key] = tuple(int(t) for t in tokens)
            elif key in _FIELDS:
                deck_kw[key] = _FIELDS[key](value)
            else:
                raise InputDeckError(f"line {lineno}: unknown key {key!r}")
        except ValueError as exc:
            raise InputDeckError(f"line {lineno}: bad value for {key}: {exc}") from exc
    missing = {"nx", "ny", "nz"} - set(grid_kw)
    if missing:
        raise InputDeckError(f"missing grid dimensions: {sorted(missing)}")
    grid = Grid(
        int(grid_kw["nx"]), int(grid_kw["ny"]), int(grid_kw["nz"]),
        grid_kw.get("dx", 1.0), grid_kw.get("dy", 1.0), grid_kw.get("dz", 1.0),
    )
    return InputDeck(grid=grid, **deck_kw)


def load_deck(path: str | pathlib.Path) -> InputDeck:
    """Load and validate a deck file."""
    return parse_deck(pathlib.Path(path).read_text())


def format_deck(deck: InputDeck, header: str | None = None) -> str:
    """Serialise a deck back to file text (round-trips exactly)."""
    g = deck.grid
    lines = []
    if header:
        lines.append(f"# {header}")
    lines += [
        f"nx = {g.nx}", f"ny = {g.ny}", f"nz = {g.nz}",
        f"dx = {g.dx!r}", f"dy = {g.dy!r}", f"dz = {g.dz!r}",
        f"sn = {deck.sn}",
        f"nm = {deck.nm}",
        f"sigma_t = {deck.sigma_t!r}",
        f"scattering_ratio = {deck.scattering_ratio!r}",
        f"anisotropy = {deck.anisotropy!r}",
        f"source = {deck.source!r}",
        f"iterations = {deck.iterations}",
    ]
    if deck.epsilon is not None:
        lines.append(f"epsilon = {deck.epsilon!r}")
    lines += [
        f"fixup = {'true' if deck.fixup else 'false'}",
        f"mk = {deck.mk}",
        f"mmi = {deck.mmi}",
        "reflect_low = "
        + " ".join("true" if b else "false" for b in deck.reflect_low),
    ]
    if deck.source_box is not None:
        lines.append("source_box = " + " ".join(str(v) for v in deck.source_box))
    if deck.material_box is not None:
        lines.append(
            "material_box = " + " ".join(str(v) for v in deck.material_box)
        )
        lines.append(f"material_sigma_t = {deck.material_sigma_t!r}")
        lines.append(
            f"material_scattering_ratio = {deck.material_scattering_ratio!r}"
        )
    return "\n".join(lines) + "\n"


def save_deck(deck: InputDeck, path: str | pathlib.Path,
              header: str | None = None) -> None:
    """Write a deck file."""
    pathlib.Path(path).write_text(format_deck(deck, header=header))
