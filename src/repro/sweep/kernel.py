"""The diamond-difference Sn cell solve, with negative-flux fixups.

Sec. 3: "Each grid cell has 4 equations with 7 unknowns (6 faces plus 1
central).  Boundary conditions complete the system of equations.  The
solution is reached by a direct ordered solver, i.e., a sweep.  Three
known inflows allow the cell center and three outflows to be solved."

For direction cosines ``(mu, eta, xi)`` and cell sizes ``(dx, dy, dz)``
define ``cx = |mu|/dx`` etc.  The balance + diamond-difference closure
give the classic update::

    psi_c   = (S + 2 cx psi_in_x + 2 cy psi_in_y + 2 cz psi_in_z)
              / (sigma_t + 2 cx + 2 cy + 2 cz)
    psi_out = 2 psi_c - psi_in            (each face)

The *fixup* path (the paper's ``do_fixups`` branch, Figure 2 lines 12-14)
handles the diamond closure's known flaw: outflows can go negative.  The
standard set-to-zero fixup zeroes a negative outflow, replaces its
diamond relation by ``psi_out = 0`` (which changes that face's balance
coefficient from ``2 cx`` to ``cx``), re-solves, and repeats until all
outflows are non-negative -- at most three passes since faces are only
ever removed from the diamond set.

All functions are vectorised over arbitrary leading shapes: the
hyperplane reference solver passes gathered 1-D cell sets, the tile
sweeper passes ``(lines, it)`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SweepError


@dataclass(frozen=True)
class CellResult:
    """Outputs of one vectorised diamond-difference solve."""

    psi_c: np.ndarray
    out_x: np.ndarray
    out_y: np.ndarray
    out_z: np.ndarray
    #: number of cells whose solution needed at least one fixup pass
    fixups_applied: int


def dd_solve(
    source: np.ndarray,
    sigma_t: np.ndarray | float,
    in_x: np.ndarray,
    in_y: np.ndarray,
    in_z: np.ndarray,
    cx: np.ndarray | float,
    cy: np.ndarray | float,
    cz: np.ndarray | float,
    fixup: bool = False,
) -> CellResult:
    """Solve the Sn balance equation for a batch of cells.

    ``cx``/``cy``/``cz`` must be positive (use the magnitudes of the
    direction cosines; orientation is the sweeper's job).  Shapes
    broadcast against ``source``.
    """
    source = np.asarray(source, dtype=np.float64)
    cx = np.broadcast_to(np.asarray(cx, dtype=np.float64), source.shape)
    cy = np.broadcast_to(np.asarray(cy, dtype=np.float64), source.shape)
    cz = np.broadcast_to(np.asarray(cz, dtype=np.float64), source.shape)
    if np.any(cx < 0) or np.any(cy < 0) or np.any(cz < 0):
        raise SweepError("dd_solve expects non-negative face coefficients")

    denom = sigma_t + 2.0 * (cx + cy + cz)
    psi_c = (
        source + 2.0 * (cx * in_x + cy * in_y + cz * in_z)
    ) / denom
    out_x = 2.0 * psi_c - in_x
    out_y = 2.0 * psi_c - in_y
    out_z = 2.0 * psi_c - in_z

    if not fixup:
        return CellResult(psi_c, out_x, out_y, out_z, 0)
    psi_c, out_x, out_y, out_z, touched = _set_to_zero_fixup(
        source, sigma_t, in_x, in_y, in_z, cx, cy, cz, psi_c, out_x, out_y, out_z
    )
    return CellResult(psi_c, out_x, out_y, out_z, touched)


def _set_to_zero_fixup(
    source: np.ndarray,
    sigma_t: np.ndarray | float,
    in_x: np.ndarray,
    in_y: np.ndarray,
    in_z: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    cz: np.ndarray,
    psi_c: np.ndarray,
    out_x: np.ndarray,
    out_y: np.ndarray,
    out_z: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Set-to-zero fixup of a batch of plain diamond solutions.

    dd_x/dd_y/dd_z track which faces still use the diamond relation.
    Balance: sigma_t psi_c = S + sum_f c_f (in - out).  A diamond face
    (out = 2 psi_c - in) contributes 2c*in to the numerator and 2c to
    the denominator; a zeroed face (out = 0) contributes c*in to the
    numerator and nothing to the denominator.

    Cells never touched by a fixup keep their *plain* diamond values
    (not the all-diamond masked formula, which is mathematically equal
    but rounds differently): a cell's result is then a deterministic
    function of its own inputs, independent of which other cells share
    the batch -- the property the hyperplane/tile/SIMD equivalence
    tests rely on bit for bit.
    """
    plain = (psi_c, out_x, out_y, out_z)
    dd_x = np.ones(source.shape, dtype=bool)
    dd_y = np.ones(source.shape, dtype=bool)
    dd_z = np.ones(source.shape, dtype=bool)
    touched = np.zeros(source.shape, dtype=bool)
    for _ in range(3):
        bad = (out_x < 0) & dd_x
        bad_y = (out_y < 0) & dd_y
        bad_z = (out_z < 0) & dd_z
        any_bad = bad | bad_y | bad_z
        if not any_bad.any():
            break
        touched |= any_bad
        dd_x &= ~bad
        dd_y &= ~bad_y
        dd_z &= ~bad_z
        fx = np.where(dd_x, 2.0, 1.0)
        fy = np.where(dd_y, 2.0, 1.0)
        fz = np.where(dd_z, 2.0, 1.0)
        denom = (
            sigma_t
            + np.where(dd_x, 2.0, 0.0) * cx
            + np.where(dd_y, 2.0, 0.0) * cy
            + np.where(dd_z, 2.0, 0.0) * cz
        )
        psi_c = (
            source + fx * cx * in_x + fy * cy * in_y + fz * cz * in_z
        ) / denom
        out_x = np.where(dd_x, 2.0 * psi_c - in_x, 0.0)
        out_y = np.where(dd_y, 2.0 * psi_c - in_y, 0.0)
        out_z = np.where(dd_z, 2.0 * psi_c - in_z, 0.0)
        # merge inside the loop so even the *mask checks* of later passes
        # see plain values for untouched cells (full batch independence).
        psi_c = np.where(touched, psi_c, plain[0])
        out_x = np.where(touched, out_x, plain[1])
        out_y = np.where(touched, out_y, plain[2])
        out_z = np.where(touched, out_z, plain[3])
    return psi_c, out_x, out_y, out_z, int(touched.sum())


def dd_line_block_solve(
    source: np.ndarray,
    sigma_t: np.ndarray | float,
    phi_i_in: np.ndarray,
    phi_j: np.ndarray,
    phi_k: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    cz: np.ndarray,
    fixup: bool = False,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Solve a block of independent I-lines (the paper's inner work unit).

    This is the "stride-1 line-recursion in the I-direction" of Sec. 3,
    vectorised across the block: cell ``i`` of every line is solved
    simultaneously, with the I-recursion carried sequentially.

    Parameters
    ----------
    source, sigma_t:
        ``(L, it)`` arrays (``sigma_t`` may be scalar).
    phi_i_in:
        ``(L,)`` I-inflows (west face of each line's first cell).
    phi_j, phi_k:
        ``(L, it)`` J- and K-inflow faces; **updated in place** to the
        outflow faces, exactly how Sweep3D reuses its ``phij``/``phik``
        buffers.
    cx, cy, cz:
        ``(L,)`` per-line face coefficients (lines may belong to
        different angles under MMI pipelining).

    Returns
    -------
    (psi_c, phi_i_out, fixups):
        ``psi_c`` is ``(L, it)`` (the paper's ``Phi[i]`` scratch, fed to
        the flux-moment accumulation); ``phi_i_out`` is ``(L,)``.
    """
    source = np.asarray(source, dtype=np.float64)
    nlines, it = source.shape
    if phi_j.shape != (nlines, it) or phi_k.shape != (nlines, it):
        raise SweepError(
            f"face buffers must be {(nlines, it)}, got {phi_j.shape} / {phi_k.shape}"
        )
    psi_c = np.empty_like(source)
    phi_i = np.array(phi_i_in, dtype=np.float64, copy=True)
    if phi_i.shape != (nlines,):
        raise SweepError(f"phi_i_in must be ({nlines},), got {phi_i.shape}")

    # The fused fast path: everything :func:`dd_solve` would redo per
    # I-column -- dtype coercion, coefficient broadcasting, the
    # non-negativity check, and the constant part of the denominator --
    # is hoisted out of the i-loop, and the diamond-difference update is
    # inlined.  Every floating-point expression below is *literally* the
    # one in :func:`dd_solve` (only loop-invariant subexpressions are
    # hoisted, which is bitwise neutral), so results stay bit-identical
    # to the per-column reference path.
    cx = np.broadcast_to(np.asarray(cx, dtype=np.float64), (nlines,))
    cy = np.broadcast_to(np.asarray(cy, dtype=np.float64), (nlines,))
    cz = np.broadcast_to(np.asarray(cz, dtype=np.float64), (nlines,))
    if np.any(cx < 0) or np.any(cy < 0) or np.any(cz < 0):
        raise SweepError("dd_solve expects non-negative face coefficients")
    sigma_arr = np.asarray(sigma_t, dtype=np.float64)
    sigma_col = np.broadcast_to(sigma_arr, source.shape)
    two_csum = 2.0 * (cx + cy + cz)
    # uniform cross section: the denominator is the same for every column
    denom_const = sigma_arr + two_csum if sigma_arr.ndim == 0 else None
    check_fixup = fixup and nlines > 0

    # Faces are stacked on a leading axis so each column is a handful of
    # whole-array operations: faces_in[0] = I-inflow, [1] = J, [2] = K.
    # ``coef * faces_in`` gives the three per-face products in one
    # multiply and ``2.0 * psi - faces_in`` the three outflows in one
    # subtract; per element every operation (and its order) is exactly
    # dd_solve's, so the results remain bit-identical.
    coef = np.empty((3, nlines))
    coef[0] = cx
    coef[1] = cy
    coef[2] = cz
    faces_in = np.empty((3, nlines))

    fixups = 0
    for i in range(it):
        src_i = source[:, i]
        faces_in[0] = phi_i
        faces_in[1] = phi_j[:, i]
        faces_in[2] = phi_k[:, i]
        prod = coef * faces_in
        csum = (prod[0] + prod[1]) + prod[2]
        denom = denom_const if denom_const is not None else sigma_col[:, i] + two_csum
        psi = (src_i + 2.0 * csum) / denom
        faces_out = 2.0 * psi - faces_in
        if check_fixup and faces_out.min() < 0.0:
            # lazy fixup: entered only for columns where a negative
            # outflow actually exists (the common case is none).
            psi, out_x, out_y, out_z, touched = _set_to_zero_fixup(
                src_i, sigma_col[:, i],
                faces_in[0], faces_in[1], faces_in[2], cx, cy, cz,
                psi, faces_out[0], faces_out[1], faces_out[2],
            )
            fixups += touched
            psi_c[:, i] = psi
            phi_i = out_x
            phi_j[:, i] = out_y
            phi_k[:, i] = out_z
        else:
            psi_c[:, i] = psi
            phi_i = faces_out[0]
            phi_j[:, i] = faces_out[1]
            phi_k[:, i] = faces_out[2]
    return psi_c, phi_i, fixups


def flops_per_cell(nm: int, fixup: bool) -> int:
    """Useful floating-point operations per cell visit.

    Counts the operations of :func:`dd_solve` plus the source evaluation
    and flux-moment accumulation the full kernel performs per cell, the
    way the paper counts its "216 Flops" (fixup bookkeeping -- compares,
    selects, recomputation -- is overhead, not useful flops, which is
    why the fixup-on kernel is *slower* at the same flop count):

    * source from moments:       ``nm`` fused multiply-adds = ``2 nm``
    * numerator:                 3 fmas = 6
    * centre flux:               1 multiply (by precomputed 1/denom)
    * outflows:                  3 fmas (``2 psi_c - in``) = 6
    * flux-moment accumulation:  ``nm`` fmas = ``2 nm``
    """
    del fixup  # same useful-flop count; kept in the signature for intent
    return 4 * nm + 13
