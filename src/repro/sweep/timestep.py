"""Time-dependent transport: the outer time-step loop of Sec. 3.

"The analysis computes the evolution of the flux of particles over
time, by computing the current state of a cell in a time-step as a
function of its state and the states of its neighbors in the previous
time-step ...  There are several iterations for each time step, until
the solution converges."

We implement the standard backward-Euler (implicit) time
discretisation of the transport equation

    (1/v) d(psi)/dt + L psi = S

which turns each time step into a *steady* problem with an augmented
total cross section and an extra source:

    sigma_t' = sigma_t + 1 / (v dt)
    q'       = q + psi_prev / (v dt)

The previous-step angular flux enters as a source.  Storing the full
angular flux (nm x cells x ordinates) is what the original code does;
here we use the common isotropic-closure economy: the time source is
carried through the flux *moments* (exact for the n=0 balance,
approximate for higher moments), documented as such.  Tests pin the two
exact limits: dt -> infinity recovers the steady solve, and the step
response rises monotonically to the steady state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import InputDeckError
from .flux import SolveResult, SweepTally, relative_change
from .input import InputDeck
from .serial import SerialSweep3D


@dataclass
class TimeStepResult:
    """State after one time step."""

    time: float
    flux: np.ndarray
    tally: SweepTally
    inner_iterations: int


@dataclass
class TransientResult:
    """The whole transient."""

    steps: list[TimeStepResult] = field(default_factory=list)

    @property
    def times(self) -> list[float]:
        return [s.time for s in self.steps]

    @property
    def total_flux_history(self) -> list[float]:
        return [float(s.flux[0].sum()) for s in self.steps]

    @property
    def final(self) -> TimeStepResult:
        if not self.steps:
            raise InputDeckError("transient has no steps")
        return self.steps[-1]


class TimeDependentSweep3D:
    """Backward-Euler transient driver over the steady solver.

    Parameters
    ----------
    deck:
        The spatial/angular problem (its ``iterations``/``epsilon``
        control the *inner* source iteration per time step).
    velocity:
        Particle speed ``v`` in the ``1/(v dt)`` time-absorption term.
    dt:
        Time-step size.
    """

    def __init__(self, deck: InputDeck, velocity: float = 1.0, dt: float = 0.1):
        if velocity <= 0:
            raise InputDeckError(f"velocity must be > 0, got {velocity}")
        if dt <= 0:
            raise InputDeckError(f"dt must be > 0, got {dt}")
        self.deck = deck
        self.velocity = velocity
        self.dt = dt
        #: the augmented steady deck solved each step.  The scattering
        #: cross section is *absolute* physics and must not grow with the
        #: time-absorption term, so the ratio is rescaled to keep
        #: sigma_s' == sigma_s.
        aug = 1.0 / (velocity * dt)
        sigma_t_aug = deck.sigma_t + aug
        changes = dict(
            sigma_t=sigma_t_aug,
            scattering_ratio=deck.sigma_s / sigma_t_aug,
        )
        if deck.material_box is not None:
            m_aug = deck.material_sigma_t + aug
            changes["material_sigma_t"] = m_aug
            changes["material_scattering_ratio"] = (
                deck.material_sigma_t * deck.material_scattering_ratio / m_aug
            )
        self.step_deck = deck.with_(**changes)
        self._solver = SerialSweep3D(self.step_deck)

    @property
    def time_absorption(self) -> float:
        """The ``1/(v dt)`` augmentation of the total cross section."""
        return 1.0 / (self.velocity * self.dt)

    def _step(
        self, flux_prev: np.ndarray, psi_prev: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, SweepTally, int]:
        """One implicit step: inner source iteration with the previous
        step's *angular* flux feeding the time source -- the exact
        backward-Euler fixed point (a converged step with
        ``psi == psi_prev`` reproduces the steady equation exactly)."""
        from .moments import build_moment_source

        solver = self._solver
        deck = self.step_deck
        time_source = self.time_absorption * psi_prev
        flux = flux_prev.copy()  # warm start
        psi = psi_prev
        tally = SweepTally()
        iterations = 0
        for _ in range(deck.iterations):
            msrc = build_moment_source(deck, flux)
            new_flux, sweep_tally, psi = solver.sweep_angular(
                msrc, angular_source=time_source
            )
            tally.fixups += sweep_tally.fixups
            tally.leakage = sweep_tally.leakage
            change = relative_change(new_flux[0], flux[0])
            flux = new_flux
            iterations += 1
            if deck.epsilon is not None and change < deck.epsilon:
                break
        return flux, psi, tally, iterations

    def run(self, num_steps: int, flux0: np.ndarray | None = None) -> TransientResult:
        """Advance ``num_steps`` from ``flux0`` (default: cold start).

        When warm-starting from a flux, the initial angular flux is
        reconstructed by one steady sweep of that flux's sources (exact
        for a steady state)."""
        if num_steps < 1:
            raise InputDeckError(f"num_steps must be >= 1, got {num_steps}")
        deck = self.deck
        M = self._solver.quad.num_ordinates
        if flux0 is None:
            flux = np.zeros((deck.nm, *deck.grid.shape))
            psi = np.zeros((M, *deck.grid.shape))
        else:
            flux = flux0.copy()
            steady = SerialSweep3D(self.deck)
            _, _, psi = steady.sweep_angular(steady.moment_source_from(flux))
        out = TransientResult()
        t = 0.0
        for _ in range(num_steps):
            t += self.dt
            flux, psi, tally, inner = self._step(flux, psi)
            out.steps.append(TimeStepResult(t, flux, tally, inner))
        return out

    def steady_state(self) -> SolveResult:
        """The ``dt -> infinity`` reference: the plain steady solve."""
        return SerialSweep3D(self.deck).solve()
