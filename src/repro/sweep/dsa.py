"""Diffusion synthetic acceleration (DSA) for source iteration.

Plain source iteration converges with spectral radius ~ c (the
scattering ratio): near c = 1 it crawls.  Production discrete-ordinates
codes -- including the Sweep3D lineage; the paper's reference [1]
describes the LANL implementation this benchmark descends from --
accelerate it by solving a cheap diffusion problem for the iteration
error after every transport sweep:

    -div( D grad f ) + sigma_a f = sigma_s (phi_new - phi_old)
    D = 1 / (3 sigma_t)

and correcting ``phi <- phi_new + f``.  The right-hand side is the
residual scattering source the next sweep would otherwise have to
propagate one mean free path at a time; diffusion transports it to
convergence in one sparse solve.

The diffusion operator is the standard cell-centred 7-point finite
difference with Marshak vacuum boundaries (a half-cell extrapolation,
``f = 0`` at distance ``2D`` beyond the boundary face).  The operator is
factorized once (``scipy.sparse.linalg.splu``) and reused every
iteration; a 50-cubed factorization is the only super-linear cost and
is paid once per deck.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import ConfigurationError
from .input import InputDeck


class DSAAccelerator:
    """A factorized diffusion operator for one deck."""

    def __init__(self, deck: InputDeck) -> None:
        if deck.has_reflection:
            raise ConfigurationError(
                "DSA with reflective boundaries is not implemented; "
                "use vacuum decks"
            )
        if deck.heterogeneous:
            raise ConfigurationError(
                "DSA with a heterogeneous material box is not implemented"
            )
        self.deck = deck
        g = deck.grid
        self.shape = g.shape
        n = g.num_cells
        D = 1.0 / (3.0 * deck.sigma_t)
        sigma_a = deck.sigma_a

        def axis_coeffs(count: int, delta: float) -> tuple[np.ndarray, np.ndarray]:
            """(coupling to the next cell, boundary extra removal) along
            one axis, per unit volume."""
            # interior face: D / delta^2 coupling between neighbours.
            couple = np.full(count - 1, D / delta**2) if count > 1 else np.empty(0)
            # Marshak vacuum: the boundary half cell sees f = 0 at
            # distance delta/2 + 2D beyond the face.
            edge = D / (delta * (delta / 2.0 + 2.0 * D))
            return couple, edge

        cx, ex = axis_coeffs(g.nx, g.dx)
        cy, ey = axis_coeffs(g.ny, g.dy)
        cz, ez = axis_coeffs(g.nz, g.dz)

        idx = np.arange(n).reshape(self.shape)
        diag = np.full(self.shape, sigma_a)
        rows, cols, vals = [], [], []

        def couple_axis(axis: int, coeffs: np.ndarray, edge: float) -> None:
            take = [slice(None)] * 3
            give = [slice(None)] * 3
            take[axis] = slice(None, -1)
            give[axis] = slice(1, None)
            a = idx[tuple(take)].ravel()
            b = idx[tuple(give)].ravel()
            shape_c = [1, 1, 1]
            shape_c[axis] = -1
            c = np.broadcast_to(
                coeffs.reshape(shape_c), idx[tuple(take)].shape
            ).ravel()
            rows.extend(a); cols.extend(b); vals.extend(-c)
            rows.extend(b); cols.extend(a); vals.extend(-c)
            np.add.at(diag, tuple(take), coeffs.reshape(shape_c))
            np.add.at(diag, tuple(give), coeffs.reshape(shape_c))
            lo = [slice(None)] * 3
            hi = [slice(None)] * 3
            lo[axis] = 0
            hi[axis] = -1
            diag[tuple(lo)] += edge
            diag[tuple(hi)] += edge

        couple_axis(0, cx, ex)
        couple_axis(1, cy, ey)
        couple_axis(2, cz, ez)
        rows.extend(range(n)); cols.extend(range(n)); vals.extend(diag.ravel())
        matrix = sp.csc_matrix(
            (np.asarray(vals), (np.asarray(rows), np.asarray(cols))),
            shape=(n, n),
        )
        self._lu = spla.splu(matrix)

    def correct(self, phi_old0: np.ndarray, phi_new0: np.ndarray) -> np.ndarray:
        """The accelerated scalar flux ``phi_new0 + f``."""
        if phi_new0.shape != self.shape:
            raise ConfigurationError(
                f"flux shape {phi_new0.shape} != grid {self.shape}"
            )
        rhs = self.deck.sigma_s * (phi_new0 - phi_old0)
        f = self._lu.solve(rhs.ravel()).reshape(self.shape)
        return phi_new0 + f


def accelerated_solve(deck: InputDeck, epsilon: float = 1e-6,
                      max_iterations: int | None = None):
    """Source iteration with DSA, to tolerance.

    Returns ``(flux_moments, iterations, history)``.  Compare with the
    unaccelerated :class:`~repro.sweep.serial.SerialSweep3D` at the same
    epsilon to see the spectral-radius collapse (tested).
    """
    from .flux import relative_change
    from .serial import SerialSweep3D

    solver = SerialSweep3D(deck)
    dsa = DSAAccelerator(deck)
    flux = np.zeros((deck.nm, *deck.grid.shape))
    history: list[float] = []
    limit = max_iterations or deck.iterations
    for iteration in range(1, limit + 1):
        msrc = solver.moment_source_from(flux)
        new_flux, _ = solver.sweep_once(msrc)
        corrected0 = dsa.correct(flux[0], new_flux[0])
        change = relative_change(corrected0, flux[0])
        history.append(change)
        flux = new_flux
        flux[0] = corrected0
        if change < epsilon:
            return flux, iteration, history
    from ..errors import ConvergenceError

    raise ConvergenceError(
        f"DSA-accelerated iteration did not reach {epsilon} in {limit} "
        f"sweeps (last change {history[-1]:.3e})"
    )
