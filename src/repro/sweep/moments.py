"""Pn scattering-moment machinery.

Sweep3D expands the scattering source in Legendre moments of the angular
flux.  The paper's kernel shows the moment side directly (Figure 6):

.. code-block:: c

    for (n = 1; n < nm; n++)
      for (i = 0; i < it; i++)
        Flux[n][k][j][i] += pn[iq][n][m] * w[m] * Phi[i];

``pn[iq][n][m]`` is the n-th moment basis function evaluated at angle
``m`` of octant ``iq``.  We use the axially-symmetric form -- Legendre
polynomials of the (signed) polar cosine ``mu`` -- which keeps the array
shapes and the kernel's flop structure identical to Sweep3D while staying
a genuine Pn expansion:

* flux moments:     ``phi_n = sum_m w_m P_n(mu_m) psi_m``
* scattering source: ``q_m = sum_n (2n+1) P_n(mu_m) sigma_s_n phi_n``

with ``sigma_s_n = sigma_s * g^n`` a standard anisotropy decay model.
"""

from __future__ import annotations

import numpy as np
from numpy.polynomial import legendre

from ..errors import InputDeckError
from .quadrature import Quadrature


def legendre_basis(nm: int, mu: np.ndarray) -> np.ndarray:
    """``P_n(mu)`` table of shape ``(nm, len(mu))`` for n = 0..nm-1.

    This is the paper's ``pn[iq][n][m]`` with the octant axis flattened
    into the signed ``mu`` values.
    """
    if nm < 1:
        raise InputDeckError(f"number of moments must be >= 1, got {nm}")
    mu = np.asarray(mu, dtype=np.float64)
    table = np.empty((nm, mu.size))
    for n in range(nm):
        coeffs = np.zeros(n + 1)
        coeffs[n] = 1.0
        table[n] = legendre.legval(mu, coeffs)
    return table


def build_moment_source(deck, flux: np.ndarray) -> np.ndarray:
    """Scattering + external source moments for the next sweep.

    One shared implementation so every engine (serial, tile, KBA rank,
    Cell-simulated, transient) performs the identical per-cell
    operations -- the grouping is ``g^n * (sigma_s(x) * phi_n)`` followed
    by the external source added to moment 0 -- keeping cross-engine
    results bit-identical even for heterogeneous materials.

    ``deck`` must describe the same (tile of the) domain as ``flux``
    (KBA ranks pass their :meth:`~repro.sweep.input.InputDeck.tile`
    decks).
    """
    shape = flux.shape[1:]
    anis = deck.anisotropy ** np.arange(deck.nm)
    sigma_s = deck.sigma_s_field(shape=shape)
    msrc = anis[:, None, None, None] * (sigma_s * flux)
    msrc[0] += deck.source_field(shape=shape)
    return msrc


class MomentBasis:
    """Precomputed moment machinery for one quadrature set.

    Attributes
    ----------
    pn:
        ``(nm, M)`` Legendre basis table over all ordinates.
    wpn:
        ``(nm, M)`` table of ``w_m * P_n(mu_m)`` -- the coefficients of
        the flux-moment accumulation (the exact product the paper's
        Figure 7 splats into ``pnvalA..D`` after multiplying by ``w``).
    src_pn:
        ``(nm, M)`` table of ``(2n+1) * P_n(mu_m)`` -- the coefficients
        of the source evaluation.
    """

    def __init__(self, quadrature: Quadrature, nm: int) -> None:
        self.quadrature = quadrature
        self.nm = nm
        self.pn = legendre_basis(nm, quadrature.mu)
        self.wpn = quadrature.weight[None, :] * self.pn
        self.src_pn = (2.0 * np.arange(nm) + 1.0)[:, None] * self.pn

    def scattering_sigmas(self, sigma_s: float, anisotropy: float) -> np.ndarray:
        """Moment scattering cross sections ``sigma_s * g^n``.

        ``anisotropy`` must lie in ``[0, 1)``: ``g = 0`` is isotropic
        scattering (only the n=0 moment contributes).
        """
        if not 0.0 <= anisotropy < 1.0:
            raise InputDeckError(
                f"anisotropy must be in [0, 1), got {anisotropy}"
            )
        return sigma_s * anisotropy ** np.arange(self.nm)

    def combine(self, coeffs: np.ndarray, arrays: np.ndarray) -> np.ndarray:
        """``sum_n coeffs[n] * arrays[n]`` with an explicit ascending
        accumulation order.

        BLAS-backed contractions (``tensordot``) are free to reorder the
        sum, and the order can depend on operand *shape*; every moment
        combination in the code base goes through this helper instead so
        the serial, tile, KBA and Cell-simulated solvers produce
        bit-identical fluxes regardless of how cells are batched.
        """
        if coeffs.shape[0] != arrays.shape[0]:
            raise InputDeckError(
                f"coefficient count {coeffs.shape[0]} != array count "
                f"{arrays.shape[0]}"
            )
        acc = coeffs[0] * arrays[0]
        for n in range(1, coeffs.shape[0]):
            acc = coeffs[n] * arrays[n] + acc
        return acc

    def angle_source(
        self, moment_source: np.ndarray, angle: int
    ) -> np.ndarray:
        """Angular source for one ordinate from moment sources.

        ``moment_source`` has shape ``(nm, ...)`` (moments of
        ``sigma_s_n phi_n`` plus the external source in moment 0);
        returns the ``(...)``-shaped source seen by ``angle``.
        """
        if moment_source.shape[0] != self.nm:
            raise InputDeckError(
                f"moment_source has {moment_source.shape[0]} moments, "
                f"basis has {self.nm}"
            )
        coeffs = self.src_pn[:, angle].reshape(
            (self.nm,) + (1,) * (moment_source.ndim - 1)
        )
        return self.combine(coeffs, moment_source)

    def accumulate_flux(
        self, flux_moments: np.ndarray, psi: np.ndarray, angle: int
    ) -> None:
        """Add one angle's contribution to all flux moments in place.

        Implements Figure 6: ``Flux[n] += pn[n][m] * w[m] * Phi``.
        """
        for n in range(self.nm):
            flux_moments[n] += self.wpn[n, angle] * psi
