"""Problem specifications (input decks) for the transport solver.

An :class:`InputDeck` is the Python analogue of the ``sweep3d.in`` file:
grid, angular order, scattering moments, cross sections, iteration control
and the two pipelining parameters the paper's Figure 3 illustrates --
``mk`` (K-planes per block; "MK must factor KT") and ``mmi`` (angles
pipelined together; "MMI angles (1 or 3)").

The paper's measurements all use the 50-cubed benchmark input
(:func:`benchmark_deck`); tests use small decks where the functional
Cell simulation is fast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import InputDeckError
from .geometry import Grid
from .quadrature import Quadrature


@dataclass(frozen=True)
class InputDeck:
    """A complete, validated problem specification."""

    grid: Grid
    #: Sn quadrature order (Sweep3D: 6 -> six angles per octant).
    sn: int = 6
    #: number of scattering/flux moments (the kernel's ``nm``).
    nm: int = 4
    #: total macroscopic cross section (uniform single material, as in the
    #: ASCI benchmark configuration).
    sigma_t: float = 1.0
    #: scattering ratio c = sigma_s / sigma_t (must keep the medium
    #: subcritical: c < 1).
    scattering_ratio: float = 0.5
    #: Pn anisotropy decay g (sigma_s_n = sigma_s * g^n).
    anisotropy: float = 0.4
    #: uniform external isotropic source density.
    source: float = 1.0
    #: fixed sweep-iteration count (the benchmark's negative-epsi mode
    #: runs exactly |epsi| iterations; the ASCI timing input uses 12).
    iterations: int = 12
    #: optional convergence tolerance; when set, iteration may stop early.
    epsilon: float | None = None
    #: negative-flux fixups on/off (the paper's ``do_fixups``).
    fixup: bool = True
    #: K-planes per pipeline block.
    mk: int = 10
    #: angles pipelined per block.
    mmi: int = 3
    #: reflective boundary on the low x/y/z faces (vacuum when False).
    #: The standard symmetry trick: a 2N-cube with a symmetric source
    #: equals an N-cube with reflective low faces.  Supported by the
    #: hyperplane reference solver (an extension beyond the paper's
    #: vacuum-only benchmark configuration).
    reflect_low: tuple[bool, bool, bool] = (False, False, False)
    #: optional source region, half-open cell bounds
    #: ``(x0, x1, y0, y1, z0, z1)``; None = uniform source everywhere.
    #: Source/shield configurations (a localized emitter in an
    #: absorber) are the workloads the paper's intro motivates.
    source_box: tuple[int, int, int, int, int, int] | None = None
    #: optional second material region (same half-open bounds):
    #: inside the box the total cross section is ``material_sigma_t``
    #: and the scattering ratio ``material_scattering_ratio``.  With a
    #: material box, the Cell implementation must stream per-cell cross
    #: sections (a ``Sigt`` row per I-line), like original Sweep3D.
    material_box: tuple[int, int, int, int, int, int] | None = None
    material_sigma_t: float = 1.0
    material_scattering_ratio: float = 0.0

    def __post_init__(self) -> None:
        quad = Quadrature(self.sn)  # validates sn
        if self.nm < 1:
            raise InputDeckError(f"nm must be >= 1, got {self.nm}")
        if self.sigma_t <= 0:
            raise InputDeckError(f"sigma_t must be > 0, got {self.sigma_t}")
        if not 0.0 <= self.scattering_ratio < 1.0:
            raise InputDeckError(
                f"scattering ratio must be in [0, 1), got {self.scattering_ratio}"
            )
        if self.source < 0:
            raise InputDeckError(f"source must be >= 0, got {self.source}")
        if self.iterations < 1:
            raise InputDeckError(f"iterations must be >= 1, got {self.iterations}")
        if self.epsilon is not None and self.epsilon <= 0:
            raise InputDeckError(f"epsilon must be > 0, got {self.epsilon}")
        if self.mk < 1 or self.grid.nz % self.mk:
            raise InputDeckError(
                f"mk must factor kt: kt={self.grid.nz}, mk={self.mk}"
            )
        if self.mmi < 1 or quad.per_octant % self.mmi:
            raise InputDeckError(
                f"mmi must factor the angles per octant "
                f"({quad.per_octant}): got mmi={self.mmi}"
            )
        if len(self.reflect_low) != 3 or not all(
            isinstance(b, bool) for b in self.reflect_low
        ):
            raise InputDeckError(
                f"reflect_low must be three booleans, got {self.reflect_low!r}"
            )
        for name, box in (("source_box", self.source_box),
                          ("material_box", self.material_box)):
            if box is None:
                continue
            if len(box) != 6:
                raise InputDeckError(f"{name} needs six bounds, got {box!r}")
            limits = (self.grid.nx, self.grid.nx, self.grid.ny,
                      self.grid.ny, self.grid.nz, self.grid.nz)
            for value, limit in zip(box, limits):
                if not 0 <= value <= limit:
                    raise InputDeckError(
                        f"{name} {box} outside grid {self.grid.shape}"
                    )
            if box[0] >= box[1] or box[2] >= box[3] or box[4] >= box[5]:
                raise InputDeckError(f"{name} {box} is empty")
        if self.material_box is not None:
            if self.material_sigma_t <= 0:
                raise InputDeckError(
                    f"material_sigma_t must be > 0, got {self.material_sigma_t}"
                )
            if not 0.0 <= self.material_scattering_ratio < 1.0:
                raise InputDeckError(
                    f"material scattering ratio must be in [0, 1), got "
                    f"{self.material_scattering_ratio}"
                )

    @property
    def has_reflection(self) -> bool:
        return any(self.reflect_low)

    @property
    def heterogeneous(self) -> bool:
        """True when cross sections vary in space (a material box with
        different properties is present)."""
        return self.material_box is not None and (
            self.material_sigma_t != self.sigma_t
            or self.material_scattering_ratio != self.scattering_ratio
        )

    @staticmethod
    def _box_field(box, base, inside, offset, shape):
        import numpy as np

        field = np.full(shape, base, dtype=np.float64)
        if box is None:
            return field
        x0, x1, y0, y1, z0, z1 = box
        ox, oy, oz = offset
        lx0, lx1 = max(x0 - ox, 0), min(x1 - ox, shape[0])
        ly0, ly1 = max(y0 - oy, 0), min(y1 - oy, shape[1])
        lz0, lz1 = max(z0 - oz, 0), min(z1 - oz, shape[2])
        if lx0 < lx1 and ly0 < ly1 and lz0 < lz1:
            field[lx0:lx1, ly0:ly1, lz0:lz1] = inside
        return field

    def sigma_t_field(
        self,
        offset: tuple[int, int, int] = (0, 0, 0),
        shape: tuple[int, int, int] | None = None,
    ):
        """Per-cell total cross section over (a tile of) the grid."""
        return self._box_field(
            self.material_box, self.sigma_t, self.material_sigma_t,
            offset, shape or self.grid.shape,
        )

    def sigma_s_field(
        self,
        offset: tuple[int, int, int] = (0, 0, 0),
        shape: tuple[int, int, int] | None = None,
    ):
        """Per-cell scattering cross section (moment 0)."""
        return self._box_field(
            self.material_box,
            self.sigma_s,
            self.material_sigma_t * self.material_scattering_ratio,
            offset, shape or self.grid.shape,
        )

    def tile(self, offset: tuple[int, int, int], grid: "Grid") -> "InputDeck":
        """A local deck for one KBA tile: boxes shifted into tile
        coordinates and clamped.

        Careful with the empty-intersection cases: ``source_box = None``
        means *uniform* source, so a tile entirely outside the source
        region instead gets ``source = 0``; a tile outside the material
        box simply reverts to the base material.
        """
        def shift(box):
            if box is None:
                return None
            x0, x1, y0, y1, z0, z1 = box
            ox, oy, oz = offset
            out = (
                max(x0 - ox, 0), min(x1 - ox, grid.nx),
                max(y0 - oy, 0), min(y1 - oy, grid.ny),
                max(z0 - oz, 0), min(z1 - oz, grid.nz),
            )
            if out[0] >= out[1] or out[2] >= out[3] or out[4] >= out[5]:
                return None
            return out

        changes: dict = {"grid": grid}
        if self.source_box is not None:
            local = shift(self.source_box)
            changes["source_box"] = local
            if local is None:
                changes["source"] = 0.0
        if self.material_box is not None:
            local = shift(self.material_box)
            changes["material_box"] = local
            if local is None:
                changes["material_sigma_t"] = self.sigma_t
                changes["material_scattering_ratio"] = self.scattering_ratio
        return self.with_(**changes)

    def source_field(
        self,
        offset: tuple[int, int, int] = (0, 0, 0),
        shape: tuple[int, int, int] | None = None,
    ):
        """The external source density over (a tile of) the grid.

        ``offset``/``shape`` select a tile in global cell coordinates
        (the KBA ranks pass their tile plans); the default is the whole
        grid.  Returns an ``(nx, ny, nz)`` array.
        """
        shape = shape or self.grid.shape
        if self.source_box is None:
            return self._box_field(None, self.source, self.source, offset, shape)
        return self._box_field(self.source_box, 0.0, self.source, offset, shape)

    # -- derived quantities --------------------------------------------------

    @property
    def sigma_s(self) -> float:
        return self.sigma_t * self.scattering_ratio

    @property
    def sigma_a(self) -> float:
        """Absorption cross section (sigma_t - sigma_s0)."""
        return self.sigma_t - self.sigma_s

    def quadrature(self) -> Quadrature:
        return Quadrature(self.sn)

    @property
    def angles_per_octant(self) -> int:
        return Quadrature(self.sn).per_octant

    @property
    def cell_visits(self) -> int:
        """Total cell visits of a full solve: cells x ordinates x
        iterations.  This is the work unit of every performance model."""
        return (
            self.grid.num_cells
            * 8
            * self.angles_per_octant
            * self.iterations
        )

    def with_(self, **changes) -> "InputDeck":
        """A copy with fields replaced (convenience over dataclasses.replace)."""
        return replace(self, **changes)


def benchmark_deck(fixup: bool = True) -> InputDeck:
    """The paper's measurement configuration: the 50-cubed input.

    "we have ported Sweep3D ... with a 50x50x50 input set (50-cubed)"
    (Sec. 5).  S6 gives Sweep3D's six angles per octant; mk=10 and mmi=3
    are representative benchmark pipelining parameters; 12 fixed
    iterations is the ASCI timing input's negative-epsi setting.
    """
    return InputDeck(grid=Grid.cube(50), fixup=fixup)


def cube_deck(n: int, fixup: bool = True, mk: int | None = None) -> InputDeck:
    """A cubic deck of edge ``n`` for the Figure 9 grind-time sweep.

    ``mk`` must factor the cube edge; among the divisors we keep the
    pipeline deep by maximizing ``min(mk, 10)`` (a too-small mk makes
    jkm diagonals so short that most SPEs idle), breaking ties toward
    the benchmark's mk = 10.
    """
    if mk is None:
        divisors = [m for m in range(1, n + 1) if n % m == 0]
        mk = max(divisors, key=lambda m: (min(m, 10), -abs(m - 10)))
    return InputDeck(grid=Grid.cube(n), fixup=fixup, mk=mk)


def small_deck(
    n: int = 8,
    sn: int = 4,
    nm: int = 2,
    iterations: int = 4,
    fixup: bool = True,
    mk: int = 2,
    mmi: int = 3,
) -> InputDeck:
    """A test-sized deck: fast enough for the functional Cell simulation.

    ``mmi`` falls back to 1 when it does not factor the quadrature's
    angles per octant (e.g. S2 has a single angle per octant)."""
    per_octant = sn * (sn + 2) // 8
    if per_octant % mmi:
        mmi = 1
    if n % mk:
        mk = 1
    return InputDeck(
        grid=Grid.cube(n),
        sn=sn,
        nm=nm,
        iterations=iterations,
        fixup=fixup,
        mk=mk,
        mmi=mmi,
    )
