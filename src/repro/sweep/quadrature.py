"""Level-symmetric (LQn) angular quadrature sets for discrete ordinates.

Sweep3D models particle movement "in terms of six angles (three angles in
the forward direction and three angles in the backward direction) for each
octant" (Sec. 3) -- that is the S6 level-symmetric set with 6 ordinates
per octant.  This module implements the standard LQn construction
(Lewis & Miller, *Computational Methods of Neutron Transport*, Table 4-1):

* choose the first level cosine ``mu_1`` (tabulated per order N);
* the remaining level cosines follow from the level-symmetry relation
  ``mu_i^2 = mu_1^2 + (i-1) * 2(1 - 3 mu_1^2) / (N - 2)``;
* ordinates in one octant are the triplets ``(mu_a, mu_b, mu_c)`` of level
  values whose indices satisfy ``a + b + c = N/2 + 2``;
* weights are shared within a symmetry class of the index triplet and
  tabulated per order.

Weights are normalised so the *full sphere* sums to one: the scalar flux
is then simply ``phi = sum_m w_m psi_m`` and an infinite-medium balance
reads ``phi = q / (sigma_t - sigma_s)``, which the tests exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from ..errors import QuadratureError

#: First level cosine per supported order (Lewis & Miller Table 4-1).
_MU1: dict[int, float] = {
    2: 0.5773503,
    4: 0.3500212,
    6: 0.2666355,
    8: 0.2182179,
    12: 0.1672126,
    16: 0.1389568,
}

#: Published point-class weights (Lewis & Miller Table 4-1), keyed by the
#: sorted index triplet of the class representative; values sum to 1 over
#: one octant and are divided by 8 at construction.  Orders without a
#: table entry (S12, S16) get their class weights *derived* by
#: even-moment matching -- see :func:`derive_class_weights`, which
#: reproduces these tabulated values to full table precision (tested).
_CLASS_WEIGHTS: dict[int, dict[tuple[int, int, int], float]] = {
    2: {(1, 1, 1): 1.0},
    4: {(1, 1, 2): 1.0 / 3.0},
    6: {(1, 1, 3): 0.1761263, (1, 2, 2): 0.1572071},
    8: {(1, 1, 4): 0.1209877, (1, 2, 3): 0.0907407, (2, 2, 2): 0.0925926},
}


def weight_classes(n: int) -> list[tuple[int, int, int]]:
    """The symmetry classes of level-index triplets for order ``n``:
    sorted triplets ``(i, j, k)`` with ``i + j + k = n/2 + 2``."""
    count = n // 2
    target = count + 2
    out = []
    for i in range(1, count + 1):
        for j in range(i, count + 1):
            k = target - i - j
            if j <= k <= count:
                out.append((i, j, k))
    return out


def derive_class_weights(n: int) -> dict[tuple[int, int, int], float]:
    """Class weights by even-moment matching.

    A level-symmetric set must integrate the even monomials exactly:
    ``sum_m w_m mu_m^{2i} = 1/(2i+1)`` (full-sphere weights summing to
    one) for ``i = 0 .. n/2``.  Per octant and per symmetry class this
    is a small linear system; the level structure makes the (one more
    equations than unknowns) system consistent, which is the defining
    property of the LQn construction.  Raises if the residual or a
    negative weight betrays an inconsistent order/mu1 pair.
    """
    if n not in _MU1:
        raise QuadratureError(
            f"S{n} not supported; available LQn orders: {sorted(_MU1)}"
        )
    levels = Quadrature._levels(n)
    classes = weight_classes(n)
    count = n // 2
    A = np.zeros((count + 1, len(classes)))
    b = np.array([1.0 / (2 * i + 1) for i in range(count + 1)])
    for ci, key in enumerate(classes):
        for perm in set(permutations(key)):
            A[:, ci] += levels[perm[0] - 1] ** (
                2 * np.arange(count + 1)
            )
    weights, *_ = np.linalg.lstsq(A, b, rcond=None)
    residual = float(np.abs(A @ weights - b).max())
    if residual > 1e-7:
        raise QuadratureError(
            f"S{n}: moment matching inconsistent (residual {residual:.2e})"
        )
    if (weights < -1e-9).any():
        raise QuadratureError(f"S{n}: derived weights go negative")
    return dict(zip(classes, (float(w) for w in weights)))

#: The eight octants as sign triplets, in Sweep3D's sweep order: octants
#: are visited so that consecutive octants reverse one axis at a time
#: (the "iq" loop of Figure 2).
OCTANT_SIGNS: tuple[tuple[int, int, int], ...] = (
    (+1, +1, +1),
    (-1, +1, +1),
    (-1, -1, +1),
    (+1, -1, +1),
    (+1, +1, -1),
    (-1, +1, -1),
    (-1, -1, -1),
    (+1, -1, -1),
)


@dataclass(frozen=True)
class Ordinate:
    """One discrete direction with its weight (full-sphere normalised)."""

    mu: float   # x-direction cosine (signed)
    eta: float  # y-direction cosine (signed)
    xi: float   # z-direction cosine (signed)
    weight: float

    @property
    def octant(self) -> int:
        """Index into :data:`OCTANT_SIGNS` for this ordinate's signs."""
        signs = (
            1 if self.mu > 0 else -1,
            1 if self.eta > 0 else -1,
            1 if self.xi > 0 else -1,
        )
        return OCTANT_SIGNS.index(signs)


class Quadrature:
    """A complete LQn quadrature set over all eight octants.

    Attributes
    ----------
    n:
        The Sn order (2, 4, 6 or 8).
    per_octant:
        Ordinates per octant: ``n (n + 2) / 8``.
    mu, eta, xi, weight:
        Flat arrays over all ``8 * per_octant`` ordinates, grouped by
        octant in :data:`OCTANT_SIGNS` order (all of octant 0 first).
    """

    def __init__(self, n: int) -> None:
        if n not in _MU1:
            raise QuadratureError(
                f"S{n} not supported; available LQn orders: {sorted(_MU1)}"
            )
        self.n = n
        self.per_octant = n * (n + 2) // 8
        levels = self._levels(n)
        class_weights = _CLASS_WEIGHTS.get(n) or derive_class_weights(n)
        octant_pts = self._octant_points(n, levels, class_weights)
        if len(octant_pts) != self.per_octant:
            raise QuadratureError(
                f"S{n}: constructed {len(octant_pts)} points per octant, "
                f"expected {self.per_octant}"
            )
        mus, etas, xis, ws = [], [], [], []
        for sx, sy, sz in OCTANT_SIGNS:
            for (m, e, x), w in octant_pts:
                mus.append(sx * m)
                etas.append(sy * e)
                xis.append(sz * x)
                # tabulated class weights sum to 1 per octant; a full
                # sphere of 8 octants must sum to 1.
                ws.append(w / 8.0)
        self.mu = np.array(mus)
        self.eta = np.array(etas)
        self.xi = np.array(xis)
        self.weight = np.array(ws)

    @staticmethod
    def _levels(n: int) -> np.ndarray:
        mu1 = _MU1[n]
        count = n // 2
        if count == 1:
            return np.array([mu1])
        delta = 2.0 * (1.0 - 3.0 * mu1 * mu1) / (n - 2)
        sq = mu1 * mu1 + delta * np.arange(count)
        return np.sqrt(sq)

    @staticmethod
    def _octant_points(
        n: int,
        levels: np.ndarray,
        classes: dict[tuple[int, int, int], float],
    ) -> list[tuple[tuple[float, float, float], float]]:
        """All (direction, weight) pairs for the positive octant."""
        target = n // 2 + 2
        points: list[tuple[tuple[float, float, float], float]] = []
        count = n // 2
        seen: set[tuple[int, int, int]] = set()
        for key, weight in classes.items():
            for perm in set(permutations(key)):
                a, b, c = perm
                if a + b + c != target:  # pragma: no cover - table sanity
                    raise QuadratureError(
                        f"S{n}: class {key} violates the level-sum rule"
                    )
                if max(perm) > count:  # pragma: no cover - table sanity
                    raise QuadratureError(f"S{n}: class {key} exceeds level count")
                if perm in seen:
                    continue
                seen.add(perm)
                points.append(
                    ((levels[a - 1], levels[b - 1], levels[c - 1]), weight)
                )
        return points

    # -- views -------------------------------------------------------------

    @property
    def num_ordinates(self) -> int:
        return self.mu.size

    def octant_slice(self, octant: int) -> slice:
        """Flat-array slice selecting one octant's ordinates."""
        if not 0 <= octant < 8:
            raise QuadratureError(f"octant must be 0..7, got {octant}")
        return slice(octant * self.per_octant, (octant + 1) * self.per_octant)

    def ordinates(self) -> list[Ordinate]:
        """All ordinates as objects (convenience for examples/tests)."""
        return [
            Ordinate(float(m), float(e), float(x), float(w))
            for m, e, x, w in zip(self.mu, self.eta, self.xi, self.weight)
        ]

    # -- invariants ---------------------------------------------------------

    def moment_error(self) -> dict[str, float]:
        """Deviation of the set's exactly-integrable moments.

        A level-symmetric set integrates, over the unit sphere with
        weights summing to one: ``<1> = 1``, ``<mu> = 0``, and
        ``<mu^2> = 1/3`` (likewise for eta, xi).  Returns the absolute
        errors; tests assert they are at tabulation precision.
        """
        return {
            "zeroth": abs(float(self.weight.sum()) - 1.0),
            "first_mu": abs(float((self.weight * self.mu).sum())),
            "second_mu": abs(float((self.weight * self.mu**2).sum()) - 1.0 / 3.0),
            "second_eta": abs(float((self.weight * self.eta**2).sum()) - 1.0 / 3.0),
            "second_xi": abs(float((self.weight * self.xi**2).sum()) - 1.0 / 3.0),
            "unit_norm": float(
                np.max(np.abs(self.mu**2 + self.eta**2 + self.xi**2 - 1.0))
            ),
        }


def sweep3d_quadrature() -> Quadrature:
    """The paper's angular configuration: S6, six angles per octant."""
    return Quadrature(6)
