"""Flux containers and convergence measures."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SweepError


@dataclass
class SweepTally:
    """Per-sweep bookkeeping: fixups and boundary leakage."""

    fixups: int = 0
    leakage: float = 0.0

    def merge(self, other: "SweepTally") -> None:
        self.fixups += other.fixups
        self.leakage += other.leakage


@dataclass
class SolveResult:
    """The outcome of a full source-iteration solve.

    Attributes
    ----------
    flux:
        Flux moments, shape ``(nm, nx, ny, nz)``; ``flux[0]`` is the
        scalar flux.
    iterations:
        Sweep iterations actually performed.
    history:
        Per-iteration relative change of the scalar flux.
    tally:
        Aggregated fixup count and final-iteration leakage.
    converged:
        True when an epsilon was set and met within the allowed
        iterations (always True in fixed-iteration mode).
    """

    flux: np.ndarray
    iterations: int
    history: list[float] = field(default_factory=list)
    tally: SweepTally = field(default_factory=SweepTally)
    converged: bool = True

    @property
    def scalar_flux(self) -> np.ndarray:
        return self.flux[0]

    def total_scalar_flux(self, cell_volume: float = 1.0) -> float:
        """Volume-integrated scalar flux (for balance checks)."""
        return float(self.flux[0].sum()) * cell_volume


def relative_change(new: np.ndarray, old: np.ndarray) -> float:
    """Max-norm relative change of the scalar flux between iterations.

    This is Sweep3D's ``epsi`` convergence measure: the largest pointwise
    change normalised by the largest new flux.
    """
    if new.shape != old.shape:
        raise SweepError(f"flux shape mismatch: {new.shape} vs {old.shape}")
    scale = float(np.max(np.abs(new)))
    if scale == 0.0:
        return 0.0
    return float(np.max(np.abs(new - old))) / scale
