"""Physics-based verification checks for solver results.

These are the invariants the test suite leans on, chosen so that a broken
sweep cannot pass by accident:

* **positivity** -- with non-negative sources and fixups enabled, the
  scalar flux is non-negative everywhere;
* **particle balance** -- in a pure absorber (single sweep captures the
  full solution), production = absorption + leakage exactly;
* **symmetry** -- a cubic, uniform problem is invariant under the grid's
  48 cube symmetries; the scalar flux must be too;
* **infinite-medium limit** -- with reflective-like thick domains the
  centre flux approaches ``q / sigma_a``.
"""

from __future__ import annotations

import numpy as np

from .flux import SolveResult
from .input import InputDeck


def positivity_violation(result: SolveResult) -> float:
    """Most negative scalar-flux value (0.0 when none are negative)."""
    worst = float(result.scalar_flux.min())
    return min(worst, 0.0)


def balance_residual(deck: InputDeck, result: SolveResult) -> float:
    """Relative particle-balance residual of the final sweep.

    Production = ``q * V_total`` (external source only; at convergence
    the scattering source is internal and cancels).  For a pure absorber
    (scattering_ratio == 0) this holds after a single sweep; otherwise it
    holds to the convergence tolerance.

    Returns ``|production - absorption - leakage| / production``.
    """
    g = deck.grid
    vol = g.dx * g.dy * g.dz
    production = float(deck.source_field().sum()) * vol
    sigma_a_field = deck.sigma_t_field() - deck.sigma_s_field()
    absorption = float((sigma_a_field * result.scalar_flux).sum()) * vol
    if production == 0:
        return abs(absorption + result.tally.leakage)
    return abs(production - absorption - result.tally.leakage) / production


def symmetry_error(result: SolveResult, transpose: bool = True) -> float:
    """Max deviation of the scalar flux under cube symmetries.

    Valid for cubic decks with uniform material and source: the flux
    must be invariant under reversing any axis.  Axis *transpositions*
    are additionally checked when ``transpose`` is set -- valid only for
    isotropic scattering (``nm == 1`` or ``anisotropy == 0``), because
    the axial Pn expansion of :mod:`repro.sweep.moments` deliberately
    singles out the x-axis."""
    phi = result.scalar_flux
    errs = [
        float(np.max(np.abs(phi - phi[::-1, :, :]))),
        float(np.max(np.abs(phi - phi[:, ::-1, :]))),
        float(np.max(np.abs(phi - phi[:, :, ::-1]))),
    ]
    if transpose and phi.shape[0] == phi.shape[1] == phi.shape[2]:
        errs.append(float(np.max(np.abs(phi - phi.transpose(1, 0, 2)))))
        errs.append(float(np.max(np.abs(phi - phi.transpose(2, 1, 0)))))
    scale = float(np.max(np.abs(phi))) or 1.0
    return max(errs) / scale


def infinite_medium_flux(deck: InputDeck) -> float:
    """The analytic infinite-medium scalar flux ``q / sigma_a``.

    The centre of a thick domain approaches this value; tests use it as
    an asymptotic sanity bound."""
    return deck.source / deck.sigma_a
