"""The per-rank program of a multi-process cluster solve.

A rank process is one KBA grid position running the whole per-rank
source iteration of :meth:`repro.mpi.wavefront.KBASweep3D._rank_program`
-- the same local deck tiling, the same :class:`RankBoundary` leakage
chain, the same serial sweep -- over a pluggable transport endpoint
instead of the in-process :class:`~repro.mpi.comm.SimComm`.  The only
collective the loop needs (the per-iteration max-allreduce feeding the
convergence history) runs through the parent's control channel, which
doubles as the drain barrier: after every iteration each rank reports
``(diff, scale)`` and waits for GO or STOP, so a SIGTERM'd parent can
park the whole job at one consistent iteration boundary.

``repro cluster-rank --connect HOST:PORT --rank N`` enters
:func:`rank_main`: connect, HELLO, then serve manifests until BYE.  The
manifest reuses the :class:`~repro.parallel.pool.PersistentPool` payload
protocol (``{"kind": "cluster", "deck", "P", "Q", "config"}``), and the
process survives across manifests, so recompiled ISA programs stay warm
in the process-global cache exactly like parked pool workers.
"""

from __future__ import annotations

import logging
import signal
import socket
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..errors import ClusterError, ConfigurationError
from ..mpi.wavefront import KBASweep3D, RankBoundary
from ..obs.context import adopt_payload
from ..obs.flight import enable_flight, flight
from ..obs.log import get_logger, log_event
from ..sweep.flux import SweepTally
from ..sweep.input import InputDeck
from .frames import (
    KIND_CONTROL,
    KIND_TRACE,
    pack_control,
    pack_trace,
    recv_frame,
    send_frame,
    unpack_control,
    unpack_trace,
)
from .transport import (
    DEFAULT_RECV_TIMEOUT,
    Endpoint,
    EndpointComm,
    LocalFabric,
    MPIEndpoint,
    SocketEndpoint,
)

#: barrier verdicts
GO = "go"
STOP = "stop"

_log = get_logger("cluster.rank")


@dataclass(frozen=True)
class RankManifest:
    """Everything a rank process needs to rebind one solve."""

    deck: InputDeck
    P: int
    Q: int
    config: Any  #: MachineConfig for the cell engine, None for tile
    engine: str = "cell"  #: "cell" (simulated chip) or "tile" (NumPy)

    @property
    def size(self) -> int:
        return self.P * self.Q

    def to_payload(self) -> dict[str, Any]:
        """The PersistentPool-shaped bind payload."""
        return {
            "kind": "cluster",
            "deck": self.deck,
            "P": self.P,
            "Q": self.Q,
            "config": self.config,
            "engine": self.engine,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "RankManifest":
        if payload.get("kind") != "cluster":
            raise ClusterError(
                f"manifest kind {payload.get('kind')!r} is not 'cluster'"
            )
        return cls(
            deck=payload["deck"],
            P=int(payload["P"]),
            Q=int(payload["Q"]),
            config=payload.get("config"),
            engine=payload.get("engine", "cell"),
        )


@dataclass
class RankReport:
    """One rank's result, refolded by the driver in serial rank order."""

    rank: int
    iterations: int
    fixups: int
    leakage: float
    diffs: list[float]
    scales: list[float]
    flux: np.ndarray
    octant_walls: list[float]
    span_s: float
    transport: dict[str, Any]
    metrics: dict[str, Any] | None = None
    #: captured trace stream (``config.trace`` runs): ``{"rank",
    #: "events", "machine_info", "total_cycles"}``.  Socket ranks strip
    #: this off and ship it as a TRACE frame; local (threaded) ranks
    #: hand it to the driver directly.
    trace: dict[str, Any] | None = None


class TransportBoundary(RankBoundary):
    """The KBA boundary over a transport endpoint.

    Exactly :class:`~repro.mpi.wavefront.RankBoundary` -- same direction
    resolution, same leakage tally chain -- plus the two seams the wire
    needs: the coalescing flush at the end of every
    (octant, angle-block, K-block) step (``send_i`` buffers, ``send_j``
    closes the step), and per-octant wall stamps at ``finish_octant``
    for the per-direction sweep timings the projection benches record.
    """

    def __init__(self, deck, quad, endpoint: Endpoint, cart, mmi, mk) -> None:
        super().__init__(deck, quad, EndpointComm(endpoint), cart, mmi, mk)
        self.endpoint = endpoint
        self.octant_walls = [0.0] * 8
        self._stamp = time.perf_counter()

    def send_j(self, octant, angles, k0, data):
        super().send_j(octant, angles, k0, data)
        # one frame per destination per step, eager on the wire
        self.endpoint.flush()

    def finish_octant(self, octant, angles, phik):
        super().finish_octant(octant, angles, phik)
        now = time.perf_counter()
        self.octant_walls[octant] += now - self._stamp
        self._stamp = now


def _make_sweeper(manifest: RankManifest, local: InputDeck):
    if manifest.engine == "tile":
        from ..sweep.pipelining import TileSweeper

        return TileSweeper(local)
    if manifest.engine == "cell":
        from ..core.solver import CellSweep3D

        return CellSweep3D(local, manifest.config)
    raise ConfigurationError(f"unknown cluster rank engine {manifest.engine!r}")


def run_rank_solve(
    manifest: RankManifest,
    endpoint: Endpoint,
    barrier: Callable[[int, float, float], str],
) -> RankReport:
    """One rank's source iteration; mirrors ``KBASweep3D._rank_program``.

    ``barrier(iteration, diff, scale)`` is the parent-mediated
    allreduce/drain seam: it must return :data:`GO` to continue or
    :data:`STOP` to park at this iteration boundary.
    """
    from ..sweep.moments import build_moment_source

    deck = manifest.deck
    kba = KBASweep3D(deck, P=manifest.P, Q=manifest.Q)
    plan = kba.plan(endpoint.rank)
    local = deck.tile((plan.x0, plan.y0, 0), plan.local_grid(deck.grid))
    sweeper = _make_sweeper(manifest, local)
    quad = sweeper.quad

    flux = np.zeros((deck.nm, *local.grid.shape))
    total = SweepTally()
    diffs: list[float] = []
    scales: list[float] = []
    octant_walls = [0.0] * 8
    done = 0
    t0 = time.perf_counter()
    try:
        for i in range(deck.iterations):
            msrc = build_moment_source(local, flux)
            boundary = TransportBoundary(
                local, quad, endpoint, kba.cart, deck.mmi, deck.mk
            )
            new_flux, tally, _ = sweeper.sweep(msrc, boundary=boundary)
            total.fixups += tally.fixups
            total.leakage = boundary.leakage
            for o in range(8):
                octant_walls[o] += boundary.octant_walls[o]
            diff = float(np.max(np.abs(new_flux[0] - flux[0])))
            scale = float(np.max(np.abs(new_flux[0])))
            diffs.append(diff)
            scales.append(scale)
            flux = new_flux
            done = i + 1
            if barrier(i, diff, scale) != GO:
                break
        span = time.perf_counter() - t0
        metrics = None
        if manifest.engine == "cell" and getattr(
            manifest.config, "metrics", False
        ):
            metrics = sweeper.metrics.to_dict()
        trace = None
        bus = getattr(sweeper, "trace", None)
        if bus is not None and getattr(bus, "enabled", False):
            from ..obs.merge import events_to_wire

            # the rank's whole solve on one bus from cycle 0: directly
            # comparable across transports, no timestamp alignment
            trace = {
                "rank": endpoint.rank,
                "events": events_to_wire(bus.events),
                "machine_info": dict(bus.machine_info),
                "total_cycles": bus.now,
            }
        return RankReport(
            rank=endpoint.rank,
            iterations=done,
            fixups=total.fixups,
            leakage=total.leakage,
            diffs=diffs,
            scales=scales,
            flux=flux,
            octant_walls=octant_walls,
            span_s=span,
            transport=endpoint.stats.to_dict(),
            metrics=metrics,
            trace=trace,
        )
    finally:
        close = getattr(sweeper, "close", None)
        if close is not None:
            close()


# ---------------------------------------------------------------------------
# Control channel (parent <-> rank, CONTROL frames over one TCP stream)
# ---------------------------------------------------------------------------


class ControlChannel:
    """Pickled control dicts over one socket, length-prefixed."""

    def __init__(self, sock: socket.socket, timeout: float = DEFAULT_RECV_TIMEOUT):
        self.sock = sock
        self.sock.settimeout(timeout)

    def send(self, payload: dict[str, Any]) -> None:
        send_frame(self.sock, KIND_CONTROL, pack_control(payload))

    def send_trace(self, payload: dict[str, Any]) -> None:
        """Ship a rank's trace stream as a TRACE frame (JSON body)."""
        send_frame(self.sock, KIND_TRACE, pack_trace(payload))

    def recv_any(self) -> tuple[int, dict[str, Any]]:
        """One frame of either channel kind: ``(KIND_CONTROL, dict)``
        or ``(KIND_TRACE, dict)``."""
        try:
            kind, body = recv_frame(self.sock)
        except socket.timeout as exc:
            raise ClusterError("control channel timed out") from exc
        if kind == 0:
            raise ClusterError("control channel closed by peer")
        if kind == KIND_TRACE:
            return kind, unpack_trace(body)
        if kind != KIND_CONTROL:
            raise ClusterError(f"unexpected frame kind {kind} on control channel")
        return kind, unpack_control(body)

    def recv(self) -> dict[str, Any]:
        kind, payload = self.recv_any()
        if kind != KIND_CONTROL:
            raise ClusterError("unexpected trace frame on control channel")
        return payload

    def close(self) -> None:
        self.sock.close()


def _parse_connect(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise ClusterError(f"--connect wants HOST:PORT, got {spec!r}")
    return host, int(port)


def rank_main(connect: str, rank: int, timeout: float = DEFAULT_RECV_TIMEOUT) -> int:
    """Entry point of one ``repro cluster-rank`` worker process.

    Protocol (all over the control channel): HELLO -> {MANIFEST ->
    PORT -> ADDRS -> per-iteration ITER/GO-STOP -> RESULT}* -> BYE.
    The process stays alive across manifests so per-process caches
    (compiled-ISA programs above all) stay warm, mirroring parked
    :class:`~repro.parallel.pool.PersistentPool` workers.

    SIGTERM/SIGINT are ignored here: the *parent* owns the drain and
    parks every rank at the same iteration boundary via STOP, so a
    signal delivered to the whole process group cannot tear a rank out
    mid-sweep.
    """
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    enable_flight()
    host, port = _parse_connect(connect)
    ctl = ControlChannel(
        socket.create_connection((host, port), timeout=timeout), timeout
    )
    endpoint: SocketEndpoint | None = None
    try:
        # t_wall rides every rendezvous message so the parent can
        # estimate per-rank clock offsets (metadata only; event streams
        # stay wall-clock-free)
        ctl.send({"t": "hello", "rank": rank, "t_wall": time.time()})
        while True:
            msg = ctl.recv()
            if msg["t"] == "bye":
                return 0
            if msg["t"] != "manifest":
                raise ClusterError(f"expected manifest, got {msg['t']!r}")
            manifest = RankManifest.from_payload(msg["payload"])
            adopt_payload(msg.get("obs"), identity=f"rank{rank}")
            log_event(
                _log, logging.INFO, "manifest received",
                rank=rank, engine=manifest.engine,
                grid=[manifest.P, manifest.Q],
            )
            flight().note("manifest", rank=rank, engine=manifest.engine)
            if endpoint is not None:
                endpoint.close()
            if msg.get("transport", "socket") == "mpi":
                endpoint = MPIEndpoint(rank=rank, size=manifest.size)
                ctl.send({"t": "port", "rank": rank, "port": -1})
            else:
                endpoint = SocketEndpoint(
                    rank, manifest.size, host=msg.get("bind_host", "127.0.0.1"),
                    recv_timeout=timeout,
                )
                ctl.send({"t": "port", "rank": rank, "port": endpoint.port})
            addrs_msg = ctl.recv()
            if addrs_msg["t"] != "addrs":
                raise ClusterError(f"expected addrs, got {addrs_msg['t']!r}")
            if hasattr(endpoint, "wire"):
                endpoint.wire({
                    int(r): (h, int(p))
                    for r, (h, p) in addrs_msg["addrs"].items()
                })

            def barrier(i: int, diff: float, scale: float) -> str:
                ctl.send({
                    "t": "iter", "rank": rank, "i": i,
                    "diff": diff, "scale": scale, "t_wall": time.time(),
                })
                verdict = ctl.recv()
                if verdict["t"] not in (GO, STOP):
                    raise ClusterError(
                        f"expected go/stop, got {verdict['t']!r}"
                    )
                return verdict["t"]

            try:
                report = run_rank_solve(manifest, endpoint, barrier)
            except Exception as exc:
                # ship the post-mortem before dying: the parent turns
                # this into a ClusterError carrying the flight dump
                log_event(
                    _log, logging.ERROR, "rank solve crashed",
                    rank=rank, error=str(exc),
                )
                ctl.send({
                    "t": "crash",
                    "rank": rank,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                    "flight": flight().dump("rank-crash"),
                })
                return 1
            trace = report.trace
            if trace is not None:
                # the stream travels as its own TRACE frame (JSON), not
                # inside the pickled result
                report.trace = None
                ctl.send_trace(trace)
            ctl.send({"t": "result", "report": report})
    finally:
        if endpoint is not None:
            endpoint.close()
        ctl.close()
