"""Pluggable rank-to-rank transports behind the face-message interface.

Every transport exposes the same tiny endpoint surface the KBA boundary
needs -- tagged point-to-point face messages between ranks of one job:

* ``send(dest, tag, array)`` buffers a face toward ``dest`` (eager:
  the compute thread never blocks on the wire);
* ``flush()`` closes the current coalescing step: everything buffered
  since the last flush travels as **one frame per destination** (the
  per-(octant, angle-block, K-block) step seam the boundary drives);
* ``recv(src, tag)`` blocks until the matching face arrived (lazy:
  receives complete whenever the reader thread already banked them, so
  I/J-face sends overlap the next diagonal's compute).

Three implementations:

:class:`LocalFabric` / its endpoints -- the in-process reference: the
same condition-variable mailbox discipline as
:class:`repro.mpi.comm.Fabric`, zero wire cost, bit-identical to the
queue path (arrays are copied on delivery, exactly like
``freeze_payload``).

:class:`SocketEndpoint` -- TCP over loopback or a real network: one
listening data socket per rank process, a sender thread draining an
unbounded frame queue (eager send), an acceptor + per-connection reader
threads filling the mailbox (lazy recv), length-prefixed frames from
:mod:`repro.cluster.frames`.

:class:`MPIEndpoint` -- optional ``mpi4py`` transport, gated exactly
like the torch/cupy array backends: importing this module never imports
mpi4py, :func:`transport_status` reports availability without raising,
and constructing the endpoint on a host without the wheel raises
:class:`~repro.errors.ConfigurationError`.

Every endpoint keeps a :class:`TransportStats`: message/byte counters
for both directions plus the three wall-clock buckets the overlap story
needs -- ``send_wait_s`` (compute thread handing frames to the wire;
measured with :func:`time.thread_time` so scheduler preemption on an
oversubscribed host is not charged to the transport), ``recv_wait_s``
(compute thread blocked waiting for a face, wall clock) and ``wire_s``
(wire busy, wall clock).  ``overlap_ratio`` is the fraction of wire
time hidden behind compute: ~1.0 for the eager socket sender, ~0.0 for
a blocking transport.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from ..errors import ClusterError, ConfigurationError
from .frames import (
    KIND_DATA,
    frame_bytes,
    pack_messages,
    recv_frame,
    unpack_messages,
)

#: seconds a blocking receive waits before declaring the job wedged
DEFAULT_RECV_TIMEOUT = 600.0


@dataclass
class TransportStats:
    """Per-endpoint traffic and wait accounting (see module docstring)."""

    msgs_sent: int = 0
    msgs_recv: int = 0
    #: face payload bytes (raw float64), the quantity the analytic
    #: model predicts exactly; framing overhead is ``wire_bytes``
    bytes_sent: int = 0
    bytes_recv: int = 0
    frames_sent: int = 0
    frames_recv: int = 0
    wire_bytes: int = 0
    send_wait_s: float = 0.0
    recv_wait_s: float = 0.0
    wire_s: float = 0.0

    @property
    def overlap_ratio(self) -> float:
        """Fraction of wire time hidden behind compute."""
        if self.wire_s <= 0.0:
            return 1.0
        return max(self.wire_s - self.send_wait_s, 0.0) / self.wire_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "msgs_sent": self.msgs_sent,
            "msgs_recv": self.msgs_recv,
            "bytes_sent": self.bytes_sent,
            "bytes_recv": self.bytes_recv,
            "frames_sent": self.frames_sent,
            "frames_recv": self.frames_recv,
            "wire_bytes": self.wire_bytes,
            "send_wait_s": self.send_wait_s,
            "recv_wait_s": self.recv_wait_s,
            "wire_s": self.wire_s,
            "overlap_ratio": self.overlap_ratio,
        }


class Endpoint(Protocol):
    """One rank's attachment to the fabric."""

    rank: int
    size: int
    stats: TransportStats

    def send(self, dest: int, tag: int, data: np.ndarray) -> None: ...
    def flush(self) -> None: ...
    def recv(self, src: int, tag: int) -> np.ndarray: ...
    def close(self) -> None: ...


class EndpointComm:
    """Adapter giving an :class:`Endpoint` the ``SimComm`` spelling
    :class:`repro.mpi.wavefront.RankBoundary` expects, so the exact
    boundary (and its leakage-tally chain) runs unchanged over any
    transport."""

    def __init__(self, endpoint: Endpoint) -> None:
        self.endpoint = endpoint

    @property
    def rank(self) -> int:
        return self.endpoint.rank

    @property
    def size(self) -> int:
        return self.endpoint.size

    def send(self, data: np.ndarray, dest: int, tag: int) -> None:
        self.endpoint.send(dest, tag, data)

    def recv(self, src: int, tag: int) -> np.ndarray:
        return self.endpoint.recv(src, tag)


# ---------------------------------------------------------------------------
# In-process reference transport
# ---------------------------------------------------------------------------


class _Mailbox:
    """Condition-variable mailbox keyed by ``(src, tag)``."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._boxes: dict[tuple[int, int], deque[np.ndarray]] = {}

    def put_many(self, items: list[tuple[int, int, np.ndarray]]) -> None:
        with self._cond:
            for src, tag, arr in items:
                self._boxes.setdefault((src, tag), deque()).append(arr)
            self._cond.notify_all()

    def take(self, src: int, tag: int, timeout: float) -> np.ndarray:
        deadline = time.monotonic() + timeout
        key = (src, tag)
        with self._cond:
            while True:
                box = self._boxes.get(key)
                if box:
                    arr = box.popleft()
                    if not box:
                        del self._boxes[key]
                    return arr
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ClusterError(
                        f"recv timeout waiting for (src={src}, tag={tag})"
                    )
                self._cond.wait(remaining)


class LocalFabric:
    """Shared state of the in-process reference transport."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ClusterError(f"job size must be >= 1, got {size}")
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]

    def endpoint(self, rank: int) -> "LocalEndpoint":
        return LocalEndpoint(self, rank)


class LocalEndpoint:
    """In-process endpoint: delivery is a locked append, wire cost zero.

    Sends still go through the same per-destination coalescing buffer as
    the socket endpoint, so the message *accounting* (frames per step)
    is identical across transports.
    """

    def __init__(self, fabric: LocalFabric, rank: int) -> None:
        if not 0 <= rank < fabric.size:
            raise ClusterError(f"rank {rank} outside job of size {fabric.size}")
        self.fabric = fabric
        self.rank = rank
        self.size = fabric.size
        self.stats = TransportStats()
        self.recv_timeout = DEFAULT_RECV_TIMEOUT
        self._pending: dict[int, list[tuple[int, int, np.ndarray]]] = {}

    def send(self, dest: int, tag: int, data: np.ndarray) -> None:
        if not 0 <= dest < self.size:
            raise ClusterError(f"destination {dest} outside job of size {self.size}")
        # snapshot now (the sweeper may reuse the buffer), matching
        # SimComm's freeze_payload semantics
        arr = np.array(data, dtype=np.float64, copy=True)
        self._pending.setdefault(dest, []).append((self.rank, tag, arr))
        self.stats.msgs_sent += 1
        self.stats.bytes_sent += arr.nbytes

    def flush(self) -> None:
        if not self._pending:
            return
        t0 = time.thread_time()
        for dest, items in self._pending.items():
            self.fabric.mailboxes[dest].put_many(items)
            self.stats.frames_sent += 1
        self._pending.clear()
        self.stats.send_wait_s += time.thread_time() - t0

    def recv(self, src: int, tag: int) -> np.ndarray:
        mailbox = self.fabric.mailboxes[self.rank]
        t0 = time.perf_counter()
        arr = mailbox.take(src, tag, self.recv_timeout)
        self.stats.recv_wait_s += time.perf_counter() - t0
        self.stats.msgs_recv += 1
        self.stats.bytes_recv += arr.nbytes
        return arr

    def close(self) -> None:
        self._pending.clear()


# ---------------------------------------------------------------------------
# Socket transport
# ---------------------------------------------------------------------------


class SocketEndpoint:
    """One rank process's TCP attachment to the job.

    Lifecycle: construct (binds the listening data socket; ``port`` is
    then known), exchange addresses out of band (the driver's rendezvous
    does this over the control channel), :meth:`wire` the peer table,
    sweep, :meth:`close`.

    Threads: one *sender* draining the outgoing frame queue (dialing
    each peer once, lazily), one *acceptor*, and one *reader* per inbound
    connection banking unpacked faces into the mailbox.  The compute
    thread only packs frames and appends to the queue -- an eager send
    whose wire time overlaps the next diagonal's compute.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        host: str = "127.0.0.1",
        recv_timeout: float = DEFAULT_RECV_TIMEOUT,
    ) -> None:
        self.rank = rank
        self.size = size
        self.host = host
        self.recv_timeout = recv_timeout
        self.stats = TransportStats()
        self._mailbox = _Mailbox()
        self._pending: dict[int, list[tuple[int, int, np.ndarray]]] = {}
        self._addrs: dict[int, tuple[str, int]] = {}
        self._out: dict[int, socket.socket] = {}
        self._outq: "queue.SimpleQueue[tuple[int, bytes] | None]" = (
            queue.SimpleQueue()
        )
        self._readers: list[threading.Thread] = []
        self._inbound: list[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = False
        self._sender_err: BaseException | None = None

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(size + 4)
        self.port = self._listener.getsockname()[1]

        self._acceptor = threading.Thread(
            target=self._accept_loop, name=f"cluster-accept-{rank}", daemon=True
        )
        self._acceptor.start()
        self._sender = threading.Thread(
            target=self._send_loop, name=f"cluster-send-{rank}", daemon=True
        )
        self._sender.start()

    # -- wiring -------------------------------------------------------------

    def wire(self, addrs: dict[int, tuple[str, int]]) -> None:
        """Install the rank -> (host, port) table; peers are dialed
        lazily at first send."""
        self._addrs = dict(addrs)

    def _dial(self, dest: int) -> socket.socket:
        if dest not in self._addrs:
            raise ClusterError(f"rank {dest} has no wired address")
        host, port = self._addrs[dest]
        last: Exception | None = None
        for attempt in range(10):
            try:
                sock = socket.create_connection((host, port), timeout=30.0)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.settimeout(None)
                return sock
            except OSError as exc:  # pragma: no cover - rendezvous races
                last = exc
                time.sleep(0.05 * (attempt + 1))
        raise ClusterError(f"cannot reach rank {dest} at {host}:{port}: {last}")

    # -- background threads --------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._inbound.append(conn)
            reader = threading.Thread(
                target=self._read_loop,
                args=(conn,),
                name=f"cluster-read-{self.rank}",
                daemon=True,
            )
            reader.start()
            self._readers.append(reader)

    def _read_loop(self, conn: socket.socket) -> None:
        try:
            while True:
                kind, body = recv_frame(conn)
                if kind == 0:
                    return
                if kind != KIND_DATA:  # pragma: no cover - protocol guard
                    raise ClusterError(f"unexpected frame kind {kind} on data fabric")
                items = unpack_messages(body)
                self._mailbox.put_many(items)
                with self._lock:
                    self.stats.frames_recv += 1
                    self.stats.msgs_recv += len(items)
                    self.stats.bytes_recv += sum(a.nbytes for _, _, a in items)
        except (OSError, ClusterError):
            return
        finally:
            conn.close()

    def _send_loop(self) -> None:
        while True:
            item = self._outq.get()
            if item is None:
                return
            dest, buf = item
            try:
                sock = self._out.get(dest)
                if sock is None:
                    sock = self._out[dest] = self._dial(dest)
                t0 = time.perf_counter()
                sock.sendall(buf)
                dt = time.perf_counter() - t0
                with self._lock:
                    self.stats.wire_s += dt
                    self.stats.frames_sent += 1
                    self.stats.wire_bytes += len(buf)
            except BaseException as exc:  # noqa: BLE001 - surfaced at flush
                self._sender_err = exc
                return

    # -- Endpoint surface ----------------------------------------------------

    def send(self, dest: int, tag: int, data: np.ndarray) -> None:
        if not 0 <= dest < self.size:
            raise ClusterError(f"destination {dest} outside job of size {self.size}")
        self._pending.setdefault(dest, []).append((self.rank, tag, data))
        self.stats.msgs_sent += 1
        self.stats.bytes_sent += int(np.asarray(data).nbytes)

    def flush(self) -> None:
        if self._sender_err is not None:
            raise ClusterError(f"sender thread died: {self._sender_err}")
        if not self._pending:
            return
        # pack in the compute thread: tobytes() snapshots every payload,
        # so the sweeper may reuse its buffers immediately.  Packing is
        # serialization work (the in-process path pays it as a copy),
        # not wire wait, so only the handoff counts as send_wait_s.
        frames = [
            (dest, frame_bytes(KIND_DATA, pack_messages(items)))
            for dest, items in self._pending.items()
        ]
        self._pending.clear()
        t0 = time.thread_time()
        for item in frames:
            self._outq.put(item)
        self.stats.send_wait_s += time.thread_time() - t0

    def recv(self, src: int, tag: int) -> np.ndarray:
        t0 = time.perf_counter()
        arr = self._mailbox.take(src, tag, self.recv_timeout)
        self.stats.recv_wait_s += time.perf_counter() - t0
        return arr

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._outq.put(None)
        self._sender.join(timeout=30.0)
        for sock in self._out.values():
            try:
                sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
            sock.close()
        # closing a listener does not wake a thread already blocked in
        # accept(); shutdown does on Linux, and the self-connect covers
        # platforms where shutdown on a listening socket is ENOTCONN
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            socket.create_connection((self.host, self.port), timeout=1.0).close()
        except OSError:
            pass
        self._listener.close()
        self._acceptor.join(timeout=30.0)
        with self._lock:
            inbound = list(self._inbound)
        for conn in inbound:
            conn.close()


# ---------------------------------------------------------------------------
# Optional mpi4py transport (gated like the torch/cupy backends)
# ---------------------------------------------------------------------------


def _import_mpi():
    try:
        from mpi4py import MPI  # noqa: PLC0415

        return MPI
    except Exception:
        return None


def mpi_available() -> bool:
    return _import_mpi() is not None


def mpi_status() -> dict[str, Any]:
    mpi = _import_mpi()
    if mpi is None:
        return {
            "available": False,
            "detail": "mpi4py not installed (pip install mpi4py under an "
                      "MPI implementation)",
        }
    return {
        "available": True,
        "detail": f"mpi4py over {mpi.Get_library_version().splitlines()[0]}",
    }


class MPIEndpoint:
    """Face-message endpoint over ``MPI.COMM_WORLD``.

    For jobs launched with ``mpirun -n P*Q python -m repro cluster-rank
    --transport mpi ...`` on hosts that ship mpi4py.  Sends are
    ``Isend`` of the packed one-destination frame (MPI's own eager
    protocol provides the overlap); receives are blocking matched
    probes.  A blocking transport reports ``send_wait_s == wire_s``, so
    its overlap ratio is honestly ~0 where the implementation does not
    progress sends in the background.
    """

    def __init__(self, rank: int | None = None, size: int | None = None) -> None:
        mpi = _import_mpi()
        if mpi is None:
            raise ConfigurationError(
                "the mpi transport needs mpi4py, which is not installed "
                "on this host; use --transport socket (see docs/CLUSTER.md)"
            )
        self._mpi = mpi
        self.comm = mpi.COMM_WORLD
        self.rank = self.comm.Get_rank() if rank is None else rank
        self.size = self.comm.Get_size() if size is None else size
        self.stats = TransportStats()
        self._pending: dict[int, list[tuple[int, int, np.ndarray]]] = {}
        self._requests: list[Any] = []
        self._mail: dict[tuple[int, int], deque[np.ndarray]] = {}

    def send(self, dest: int, tag: int, data: np.ndarray) -> None:
        self._pending.setdefault(dest, []).append((self.rank, tag, data))
        self.stats.msgs_sent += 1
        self.stats.bytes_sent += int(np.asarray(data).nbytes)

    def flush(self) -> None:
        t0 = time.thread_time()
        for dest, items in self._pending.items():
            buf = pack_messages(items)
            self._requests.append(self.comm.isend(buf, dest=dest, tag=0))
            self.stats.frames_sent += 1
            self.stats.wire_bytes += len(buf)
        self._pending.clear()
        dt = time.thread_time() - t0
        self.stats.send_wait_s += dt
        self.stats.wire_s += dt

    def recv(self, src: int, tag: int) -> np.ndarray:
        key = (src, tag)
        t0 = time.perf_counter()
        while not self._mail.get(key):
            body = self.comm.recv(source=self._mpi.ANY_SOURCE, tag=0)
            items = unpack_messages(body)
            self.stats.frames_recv += 1
            self.stats.msgs_recv += len(items)
            self.stats.bytes_recv += sum(a.nbytes for _, _, a in items)
            for isrc, itag, arr in items:
                self._mail.setdefault((isrc, itag), deque()).append(arr)
        self.stats.recv_wait_s += time.perf_counter() - t0
        box = self._mail[key]
        arr = box.popleft()
        if not box:
            del self._mail[key]
        return arr

    def close(self) -> None:
        for req in self._requests:
            req.wait()
        self._requests.clear()


# ---------------------------------------------------------------------------
# Status
# ---------------------------------------------------------------------------


def transport_status() -> dict[str, dict[str, Any]]:
    """Availability of every known transport, without raising (the
    twin of :func:`repro.cell.backend.backend_status`)."""
    return {
        "local": {
            "available": True,
            "detail": "in-process reference fabric (always available)",
        },
        "socket": {
            "available": True,
            "detail": "TCP length-prefixed frames; ranks span OS "
                      "processes and hosts",
        },
        "mpi": mpi_status(),
    }
