"""Wire format of the socket transport: length-prefixed frames.

One frame is one ``sendmsg``-sized unit on the wire::

    u32 body_len | u8 kind | body

``DATA`` bodies carry a *batch* of face messages -- the transport
coalesces every message a rank emits during one (octant, angle-block,
K-block) step toward the same destination into a single frame, so the
per-message 10-us-class latency of a 2006 cluster interconnect is paid
once per step and neighbour, not once per face.  Each message in the
batch is::

    i32 src_rank | i32 tag | u8 ndim | u32 dim... | f64 payload bytes

Payloads travel as raw little-endian float64 bytes
(``ndarray.tobytes()`` / ``np.frombuffer``), which round-trips every
float bit-exactly -- the foundation of the cluster path's bit-identity
contract with the in-process engines.

``CONTROL`` bodies are pickled dicts on the parent<->rank rendezvous
channel (HELLO / MANIFEST / ITER / GO / STOP / RESULT / BYE); they never
ride the data fabric.  Pickle is acceptable there for the same reason it
is in :mod:`repro.parallel.pool`: every peer is a process we spawned.
"""

from __future__ import annotations

import json
import pickle
import struct
from typing import Any, Sequence

import numpy as np

from ..errors import ReproError


class FrameError(ReproError):
    """Malformed or truncated wire frame."""


#: frame kinds
KIND_DATA = 1
KIND_CONTROL = 2
#: a rank's captured trace-event stream, shipped back to the parent
#: before its RESULT (JSON body: deterministic, inspectable, no pickle)
KIND_TRACE = 3

_HEADER = struct.Struct("<IB")  # body_len, kind
_MSG_HEAD = struct.Struct("<iiB")  # src, tag, ndim
_DIM = struct.Struct("<I")

#: refuse frames beyond this (a 50^3 deck's largest face is ~KBs; 256 MiB
#: means a corrupted length prefix, not a message)
MAX_FRAME_BYTES = 256 * 1024 * 1024


def pack_messages(messages: Sequence[tuple[int, int, np.ndarray]]) -> bytes:
    """Serialize ``(src, tag, array)`` face messages into one DATA body."""
    parts: list[bytes] = []
    for src, tag, data in messages:
        arr = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if arr.ndim > 255:  # pragma: no cover - physically impossible here
            raise FrameError(f"array rank {arr.ndim} > 255")
        parts.append(_MSG_HEAD.pack(src, tag, arr.ndim))
        for dim in arr.shape:
            parts.append(_DIM.pack(dim))
        parts.append(arr.tobytes())
    return b"".join(parts)


def unpack_messages(body: bytes) -> list[tuple[int, int, np.ndarray]]:
    """Invert :func:`pack_messages`."""
    out: list[tuple[int, int, np.ndarray]] = []
    view = memoryview(body)
    off = 0
    while off < len(view):
        if off + _MSG_HEAD.size > len(view):
            raise FrameError("truncated message header")
        src, tag, ndim = _MSG_HEAD.unpack_from(view, off)
        off += _MSG_HEAD.size
        shape = []
        for _ in range(ndim):
            if off + _DIM.size > len(view):
                raise FrameError("truncated message dims")
            shape.append(_DIM.unpack_from(view, off)[0])
            off += _DIM.size
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * 8
        if off + nbytes > len(view):
            raise FrameError(
                f"truncated payload: need {nbytes} bytes, have {len(view) - off}"
            )
        arr = np.frombuffer(view[off:off + nbytes], dtype=np.float64)
        out.append((src, tag, arr.reshape(shape).copy()))
        off += nbytes
    return out


def pack_control(payload: dict[str, Any]) -> bytes:
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_control(body: bytes) -> dict[str, Any]:
    obj = pickle.loads(body)
    if not isinstance(obj, dict):
        raise FrameError(f"control frame decoded to {type(obj).__name__}, not dict")
    return obj


def pack_trace(payload: dict[str, Any]) -> bytes:
    """Serialize a rank's trace payload (``{"rank", "events",
    "machine_info", "total_cycles"}``) as sorted-key JSON: byte-stable
    for identical streams, which is what the cross-transport
    bit-identity tests hash."""
    return json.dumps(payload, sort_keys=True).encode()


def unpack_trace(body: bytes) -> dict[str, Any]:
    try:
        obj = json.loads(body.decode())
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"malformed trace frame: {exc}") from None
    if not isinstance(obj, dict):
        raise FrameError(f"trace frame decoded to {type(obj).__name__}, not dict")
    return obj


# -- stream I/O --------------------------------------------------------------


def frame_bytes(kind: int, body: bytes) -> bytes:
    """One whole frame, header included (what goes on the wire)."""
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame body {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body), kind) + body


def send_frame(sock, kind: int, body: bytes) -> int:
    """Write one frame to a socket; returns the bytes put on the wire."""
    buf = frame_bytes(kind, body)
    sock.sendall(buf)
    return len(buf)


def _recv_exact(sock, n: int) -> bytes:
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            raise FrameError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> tuple[int, bytes]:
    """Read one frame; raises :class:`FrameError` on EOF mid-frame and
    returns ``(0, b"")`` on a clean EOF at a frame boundary."""
    try:
        head = sock.recv(_HEADER.size)
    except ConnectionResetError:
        return 0, b""
    if not head:
        return 0, b""
    if len(head) < _HEADER.size:
        head += _recv_exact(sock, _HEADER.size - len(head))
    body_len, kind = _HEADER.unpack(head)
    if body_len > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {body_len} exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, body_len) if body_len else b""
    return kind, body
