"""Multi-host cluster transport for the KBA face-message fabric.

The paper's Figs. 10-11 extrapolate Sweep3D from one Cell chip to large
Cell clusters, where the per-direction KBA face messages -- not the
kernel -- set the scaling curve.  This package lets the rank grid span
OS processes and hosts behind the existing
:class:`~repro.sweep.pipelining.BoundaryIO` face-message interface:

* :mod:`repro.cluster.frames` -- length-prefixed wire frames with
  per-destination small-message coalescing;
* :mod:`repro.cluster.transport` -- the pluggable rank-to-rank
  endpoints: an in-process reference transport (bit-identical to the
  queue path), a TCP socket transport with eager sends and lazy
  receives, and an optional mpi4py transport gated like the torch/cupy
  array backends;
* :mod:`repro.cluster.runtime` -- the per-rank solve program
  (`repro cluster-rank`) that rebinds deck + config from a manifest;
* :mod:`repro.cluster.driver` -- the parent: rendezvous, rank process
  lifecycle, serial-rank-order refolds preserving the bit-identity
  contract, and serve-style drain on SIGTERM.

See ``docs/CLUSTER.md`` for the architecture walk-through.
"""

from __future__ import annotations

from .driver import ClusterReport, run_cluster_solve
from .transport import TransportStats, transport_status

__all__ = [
    "ClusterReport",
    "run_cluster_solve",
    "TransportStats",
    "transport_status",
]
