"""The cluster parent: rendezvous, rank lifecycle, bit-exact refolds.

:class:`ClusterDriver` runs one KBA job whose ranks live in their own
OS processes (socket transport) or threads (the in-process reference
transport), and refolds their results **in serial rank order** so the
assembled solution reproduces :meth:`repro.mpi.wavefront.KBASweep3D`
-- and therefore the queue-DAG :class:`repro.parallel.cluster.
ClusterEngine` -- bit for bit:

* per-iteration convergence history: ``max`` over ranks of the local
  flux diffs/scales (``max`` is exactly order-independent, matching the
  threaded allreduce);
* leakage: folded ``rank 0 + rank 1 + ...`` exactly like the rank-0
  ``SimComm.reduce``;
* flux: per-rank float64 tiles (raw bytes on the wire) pasted through
  the same :meth:`~repro.mpi.wavefront.KBASweep3D.plan` slices.

Lifecycle mirrors ``repro serve``: :meth:`start` spawns the rank
processes and completes the HELLO rendezvous; each :meth:`solve` sends
a fresh manifest (rank processes survive across solves, keeping
compiled-ISA caches warm like parked pool workers); :meth:`close` sends
BYE and reaps.  A SIGTERM-driven :meth:`request_drain` parks every rank
at the same iteration boundary via the control barrier and returns the
consistent partial result.
"""

from __future__ import annotations

import hashlib
import logging
import os
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ClusterError, ConfigurationError
from ..metrics.registry import MetricsRegistry
from ..mpi.wavefront import KBASweep3D
from ..obs.context import current_context
from ..obs.log import get_logger, log_event
from ..sweep.flux import SolveResult, SweepTally
from ..sweep.input import InputDeck
from .frames import KIND_TRACE
from .runtime import (
    GO,
    STOP,
    ControlChannel,
    RankManifest,
    RankReport,
    run_rank_solve,
)
from .transport import DEFAULT_RECV_TIMEOUT, LocalFabric

_log = get_logger("cluster.driver")

TRANSPORTS = ("local", "socket", "mpi")
ENGINES = ("cell", "tile")
SPAWNS = ("fork", "cli")


def default_cluster_config():
    """The per-rank chip configuration, identical to
    :class:`repro.core.cluster.CellClusterSweep3D`'s default so the two
    paths stay bit-comparable."""
    from ..core.levels import MachineConfig

    return MachineConfig(
        aligned_rows=True, structured_loops=True, double_buffer=True,
        simd=True, dma_lists=True, bank_offsets=True,
    )


def flux_sha256(flux: np.ndarray) -> str:
    """Digest of the raw float64 flux bytes -- the bit-identity pin."""
    return hashlib.sha256(np.ascontiguousarray(flux).tobytes()).hexdigest()


@dataclass
class ClusterReport:
    """Everything one cluster solve produced."""

    result: SolveResult
    transport: str
    engine: str
    P: int
    Q: int
    drained: bool
    reports: list[RankReport]
    registry: MetricsRegistry
    #: per-octant sweep wall, max over ranks (the wavefront's direction
    #: ends when its slowest rank does)
    octant_walls: list[float]
    wall_seconds: float
    #: per-rank captured trace streams (``config.trace`` runs only)
    traces: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: wall-clock offset estimate per rank (driver receive wall minus
    #: rank send wall, minimum over the HELLO/ITER rendezvous
    #: measurements); metadata for the merged timeline, never a
    #: timestamp shift
    clock_offsets: dict[int, float] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return self.P * self.Q

    def chrome_trace(self) -> dict[str, Any]:
        """One merged Perfetto document with ``rank{R}/SPE{N}`` tracks
        (requires a ``config.trace=True`` solve)."""
        if not self.traces:
            raise ClusterError(
                "no trace captured; solve with config.trace=True "
                "(repro cluster --trace)"
            )
        from ..obs.merge import rank_chrome_trace

        return rank_chrome_trace(self.traces, self.clock_offsets or None)

    @property
    def flux_digest(self) -> str:
        return flux_sha256(self.result.flux)

    @property
    def msgs_sent(self) -> int:
        return sum(r.transport["msgs_sent"] for r in self.reports)

    @property
    def bytes_sent(self) -> int:
        return sum(r.transport["bytes_sent"] for r in self.reports)

    @property
    def overlap_ratio(self) -> float:
        """Job-wide overlap: wire seconds hidden behind compute, over
        all ranks' wire seconds (1.0 when nothing touched a wire)."""
        wire = sum(r.transport["wire_s"] for r in self.reports)
        waited = sum(r.transport["send_wait_s"] for r in self.reports)
        if wire <= 0.0:
            return 1.0
        return max(wire - waited, 0.0) / wire

    def to_dict(self) -> dict[str, Any]:
        return {
            "transport": self.transport,
            "engine": self.engine,
            "grid": [self.P, self.Q],
            "ranks": self.size,
            "iterations": self.result.iterations,
            "drained": self.drained,
            "flux_sha256": self.flux_digest,
            "wall_seconds": self.wall_seconds,
            "octant_walls_s": list(self.octant_walls),
            "msgs_sent": self.msgs_sent,
            "bytes_sent": self.bytes_sent,
            "overlap_ratio": self.overlap_ratio,
            "trace_ranks": sorted(self.traces),
            "per_rank": [
                {
                    "rank": r.rank,
                    "span_s": r.span_s,
                    "octant_walls_s": list(r.octant_walls),
                    "transport": dict(r.transport),
                }
                for r in self.reports
            ],
        }


class ClusterDriver:
    """Parent of one P x Q cluster job (see module docstring)."""

    def __init__(
        self,
        deck: InputDeck,
        P: int,
        Q: int,
        transport: str = "socket",
        engine: str = "cell",
        config=None,
        spawn: str = "fork",
        bind_host: str = "127.0.0.1",
        recv_timeout: float = DEFAULT_RECV_TIMEOUT,
    ) -> None:
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {transport!r}; pick one of {TRANSPORTS}"
            )
        if transport == "mpi":
            raise ConfigurationError(
                "the mpi transport has no parent-spawned driver; launch "
                "the job under mpirun with `repro cluster-rank --transport "
                "mpi` on every rank (see docs/CLUSTER.md)"
            )
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown rank engine {engine!r}; pick one of {ENGINES}"
            )
        if spawn not in SPAWNS:
            raise ConfigurationError(
                f"unknown spawn mode {spawn!r}; pick one of {SPAWNS}"
            )
        if engine == "cell" and config is None:
            config = default_cluster_config()
        self.deck = deck
        self.P, self.Q = int(P), int(Q)
        self.transport = transport
        self.engine = engine
        self.config = config
        self.spawn = spawn
        self.bind_host = bind_host
        self.recv_timeout = recv_timeout
        self.manifest = RankManifest(
            deck=deck, P=self.P, Q=self.Q, config=config, engine=engine
        )
        # validates the process grid against the cell grid up front
        self._kba = KBASweep3D(deck, P=self.P, Q=self.Q)
        self._drain = threading.Event()
        self._started = False
        self._closed = False
        self._procs: list[Any] = []
        self._channels: dict[int, ControlChannel] = {}
        self._listener: socket.socket | None = None
        self._clock_offsets: dict[int, float] = {}

    @property
    def size(self) -> int:
        return self.P * self.Q

    # -- drain ----------------------------------------------------------------

    def request_drain(self) -> None:
        """Park the job at the next iteration boundary (serve-style
        drain; safe from a signal handler)."""
        self._drain.set()

    def install_signal_drain(self) -> None:
        """Route SIGTERM/SIGINT to :meth:`request_drain` (the parent
        process of `repro cluster` does this, mirroring `repro serve`)."""
        import signal

        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda *_: self.request_drain())

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Spawn the rank processes and complete the HELLO rendezvous
        (no-op for the in-process local transport)."""
        if self._started:
            return
        if self._closed:
            raise ClusterError("cluster driver already closed")
        self._started = True
        if self.transport == "local":
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.bind_host, 0))
        listener.listen(self.size + 4)
        listener.settimeout(self.recv_timeout)
        self._listener = listener
        port = listener.getsockname()[1]
        try:
            for rank in range(self.size):
                self._procs.append(self._spawn_rank(rank, port))
            for _ in range(self.size):
                try:
                    conn, _ = listener.accept()
                except socket.timeout as exc:
                    raise ClusterError(
                        "rendezvous timed out waiting for rank HELLOs"
                    ) from exc
                chan = ControlChannel(conn, self.recv_timeout)
                hello = chan.recv()
                if hello.get("t") != "hello":
                    raise ClusterError(f"expected hello, got {hello!r}")
                rank = int(hello["rank"])
                if rank in self._channels:
                    raise ClusterError(f"duplicate HELLO from rank {rank}")
                self._channels[rank] = chan
                self._note_clock(rank, hello.get("t_wall"))
                log_event(
                    _log, logging.INFO, "rank hello", rank=rank,
                    ranks=len(self._channels), size=self.size,
                )
        except BaseException:
            self._reap(force=True)
            raise
        log_event(
            _log, logging.INFO, "rendezvous complete",
            size=self.size, transport=self.transport, spawn=self.spawn,
        )

    def _note_clock(self, rank: int, t_wall) -> None:
        """Fold one rendezvous wall stamp into the rank's clock-offset
        estimate.  Each measurement is ``true offset + one-way latency``
        (latency > 0), so the minimum over HELLO and every ITER is the
        tightest estimate."""
        if t_wall is None:
            return
        offset = time.time() - float(t_wall)
        prev = self._clock_offsets.get(rank)
        self._clock_offsets[rank] = offset if prev is None else min(prev, offset)

    def _spawn_rank(self, rank: int, port: int):
        connect = f"{self.bind_host}:{port}"
        if self.spawn == "cli":
            return subprocess.Popen(
                [sys.executable, "-m", "repro", "cluster-rank",
                 "--connect", connect, "--rank", str(rank)],
                env=dict(os.environ),
            )
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(
            target=_fork_rank_entry,
            args=(connect, rank, self.recv_timeout),
            name=f"cluster-rank-{rank}",
        )
        proc.start()
        return proc

    def close(self) -> None:
        """Send BYE to every rank and reap the processes."""
        if self._closed:
            return
        self._closed = True
        for chan in self._channels.values():
            try:
                chan.send({"t": "bye"})
            except (OSError, ClusterError):
                pass
        self._reap()

    def _reap(self, force: bool = False) -> None:
        for chan in self._channels.values():
            chan.close()
        self._channels.clear()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for proc in self._procs:
            join = getattr(proc, "join", None)
            if join is not None:  # multiprocessing.Process
                proc.join(timeout=30.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=10.0)
            else:  # subprocess.Popen
                try:
                    proc.wait(timeout=30.0)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    proc.wait(timeout=10.0)
        self._procs.clear()

    def __enter__(self) -> "ClusterDriver":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the solve -------------------------------------------------------------

    def solve(self) -> ClusterReport:
        self.start()
        t0 = time.perf_counter()
        traces: dict[int, dict[str, Any]] = {}
        if self.transport == "local":
            reports, drained = self._solve_local()
        else:
            reports, drained, traces = self._solve_socket()
        wall = time.perf_counter() - t0
        report = self._fold(reports, drained, wall, traces)
        log_event(
            _log, logging.INFO, "cluster solve done",
            transport=self.transport, ranks=self.size,
            iterations=report.result.iterations, drained=report.drained,
            wall_seconds=round(wall, 3),
        )
        return report

    def _solve_local(self) -> tuple[list[RankReport], bool]:
        fabric = LocalFabric(self.size)
        hub = _IterationHub(self.size, self._drain)
        reports: list[RankReport | None] = [None] * self.size
        errors: list[BaseException] = []

        def rank_thread(rank: int) -> None:
            endpoint = fabric.endpoint(rank)
            endpoint.recv_timeout = self.recv_timeout
            try:
                reports[rank] = run_rank_solve(
                    self.manifest, endpoint, hub.barrier
                )
            except BaseException as exc:  # noqa: BLE001 - refired below
                errors.append(exc)
                hub.abort()
            finally:
                endpoint.close()

        threads = [
            threading.Thread(
                target=rank_thread, args=(r,), name=f"cluster-local-{r}"
            )
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        return [r for r in reports if r is not None], hub.drained

    def _recv_control(
        self, rank: int, traces: dict[int, dict[str, Any]]
    ) -> dict[str, Any]:
        """One control message from ``rank``, absorbing interleaved
        TRACE frames and turning CRASH reports into
        :class:`ClusterError` (with the rank's flight dump attached as
        ``exc.flight_dump``)."""
        while True:
            kind, msg = self._channels[rank].recv_any()
            if kind == KIND_TRACE:
                traces[int(msg.get("rank", rank))] = msg
                continue
            if msg.get("t") == "crash":
                log_event(
                    _log, logging.ERROR, "rank crashed",
                    rank=msg.get("rank", rank), error=msg.get("error"),
                )
                err = ClusterError(
                    f"rank {msg.get('rank', rank)} crashed: "
                    f"{msg.get('error')}\n{msg.get('traceback', '')}"
                )
                err.flight_dump = msg.get("flight")
                raise err
            return msg

    def _solve_socket(
        self,
    ) -> tuple[list[RankReport], bool, dict[int, dict[str, Any]]]:
        size = self.size
        chans = self._channels
        traces: dict[int, dict[str, Any]] = {}
        ctx = current_context()
        try:
            for rank in range(size):
                chans[rank].send({
                    "t": "manifest",
                    "payload": self.manifest.to_payload(),
                    "transport": "socket",
                    "bind_host": self.bind_host,
                    "obs": ctx.to_payload() if ctx is not None else None,
                })
            addrs: dict[int, tuple[str, int]] = {}
            for rank in range(size):
                msg = self._recv_control(rank, traces)
                if msg.get("t") != "port":
                    raise ClusterError(f"expected port, got {msg!r}")
                addrs[rank] = (self.bind_host, int(msg["port"]))
            for rank in range(size):
                chans[rank].send({"t": "addrs", "addrs": addrs})
            drained = False
            for _ in range(self.deck.iterations):
                for rank in range(size):
                    msg = self._recv_control(rank, traces)
                    if msg.get("t") != "iter":
                        raise ClusterError(f"expected iter, got {msg!r}")
                    self._note_clock(rank, msg.get("t_wall"))
                verdict = STOP if self._drain.is_set() else GO
                if verdict == STOP:
                    log_event(
                        _log, logging.INFO, "draining at iteration boundary",
                        iteration=int(msg.get("i", -1)) + 1,
                    )
                for rank in range(size):
                    chans[rank].send({"t": verdict})
                if verdict == STOP:
                    drained = True
                    break
            reports: list[RankReport] = []
            for rank in range(size):
                msg = self._recv_control(rank, traces)
                if msg.get("t") != "result":
                    raise ClusterError(f"expected result, got {msg!r}")
                reports.append(msg["report"])
            return reports, drained, traces
        except BaseException:
            self._closed = True
            self._reap(force=True)
            raise

    # -- refold (serial rank order; the bit-identity contract) -----------------

    def _fold(
        self,
        reports: list[RankReport],
        drained: bool,
        wall: float,
        traces: dict[int, dict[str, Any]] | None = None,
    ) -> ClusterReport:
        deck = self.deck
        size = self.size
        if len(reports) != size:
            raise ClusterError(f"got {len(reports)} reports for {size} ranks")
        reports = sorted(reports, key=lambda r: r.rank)
        traces = dict(traces or {})
        for r in reports:
            # local (threaded) ranks return the stream on the report;
            # socket ranks already shipped theirs as TRACE frames
            if r.trace is not None:
                traces.setdefault(r.rank, r.trace)
                r.trace = None
        completed = min(r.iterations for r in reports)
        if any(r.iterations != completed for r in reports):
            raise ClusterError(
                "ranks parked at different iteration boundaries: "
                f"{[r.iterations for r in reports]}"
            )
        history: list[float] = []
        for i in range(completed):
            gdiff = reports[0].diffs[i]
            gscale = reports[0].scales[i]
            for r in reports[1:]:
                gdiff = max(gdiff, r.diffs[i])
                gscale = max(gscale, r.scales[i])
            history.append(gdiff / gscale if gscale else 0.0)
        # the rank-0 reduce of the threaded runtime folds in rank order
        fixups = sum(r.fixups for r in reports)
        leakage = reports[0].leakage
        for r in reports[1:]:
            leakage = leakage + r.leakage
        global_flux = np.zeros((deck.nm, *deck.grid.shape))
        for r in reports:
            plan = self._kba.plan(r.rank)
            global_flux[
                :, plan.x0:plan.x0 + plan.nx, plan.y0:plan.y0 + plan.ny, :
            ] = r.flux
        result = SolveResult(
            flux=global_flux,
            iterations=completed,
            history=history,
            tally=SweepTally(fixups=fixups, leakage=leakage),
            converged=not drained,
        )
        registry = MetricsRegistry()
        from ..metrics.attribution import ingest_rank_transport

        for r in reports:
            ingest_rank_transport(registry, r.rank, r.transport, r.span_s)
            if r.metrics is not None:
                registry.merge(r.metrics)
        octant_walls = [
            max(r.octant_walls[o] for r in reports) for o in range(8)
        ]
        return ClusterReport(
            result=result,
            transport=self.transport,
            engine=self.engine,
            P=self.P,
            Q=self.Q,
            drained=drained,
            reports=reports,
            registry=registry,
            octant_walls=octant_walls,
            wall_seconds=wall,
            traces=traces,
            clock_offsets=dict(self._clock_offsets),
        )


class _IterationHub:
    """In-process iteration barrier for the local transport: all ranks
    arrive, the verdict (GO, or STOP once a drain was requested) is
    computed once, everyone leaves with it -- the thread twin of the
    socket driver's control-channel round."""

    def __init__(self, size: int, drain: threading.Event) -> None:
        self.size = size
        self.drained = False
        self._drain = drain
        self._cond = threading.Condition()
        self._count = 0
        self._gen = 0
        self._verdict = GO
        self._aborted = False

    def abort(self) -> None:
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    def barrier(self, i: int, diff: float, scale: float) -> str:
        with self._cond:
            if self._aborted:
                raise ClusterError("cluster job aborted (peer rank failed)")
            gen = self._gen
            self._count += 1
            if self._count == self.size:
                self._count = 0
                self._gen += 1
                if self._drain.is_set():
                    self._verdict = STOP
                    self.drained = True
                else:
                    self._verdict = GO
                self._cond.notify_all()
                return self._verdict
            while self._gen == gen and not self._aborted:
                self._cond.wait(DEFAULT_RECV_TIMEOUT)
            if self._aborted:
                raise ClusterError("cluster job aborted (peer rank failed)")
            return self._verdict


def _fork_rank_entry(connect: str, rank: int, timeout: float) -> None:
    """Target of fork-spawned rank processes (benches, tests, the
    default CLI path); the CLI-spawn twin is ``repro cluster-rank``."""
    from .runtime import rank_main

    rank_main(connect, rank, timeout)


def run_cluster_solve(
    deck: InputDeck,
    P: int,
    Q: int,
    transport: str = "socket",
    engine: str = "cell",
    config=None,
    spawn: str = "fork",
    recv_timeout: float = DEFAULT_RECV_TIMEOUT,
    drain_signals: bool = False,
) -> ClusterReport:
    """One-shot convenience: start, solve, close.

    ``drain_signals=True`` installs the SIGTERM/SIGINT drain before the
    ranks start (what `repro cluster --transport ...` uses).
    """
    driver = ClusterDriver(
        deck, P, Q, transport=transport, engine=engine, config=config,
        spawn=spawn, recv_timeout=recv_timeout,
    )
    if drain_signals:
        driver.install_signal_drain()
    with driver:
        return driver.solve()
