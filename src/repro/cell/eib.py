"""Element Interconnect Bus (EIB) model.

The EIB connects the PPE, the eight SPEs, the MIC and the I/O controllers
with an aggregate peak of 204.8 GB/s (Sec. 2).  For Sweep3D the EIB is
never the bottleneck -- main-memory bandwidth (25.6 GB/s) saturates first
-- but the model keeps the bus in the loop so that LS-to-LS transfers and
the aggregate-bandwidth sanity check of Sec. 6 are first-class.

The model is a shared-capacity throughput model: each participant has a
port sustaining 16 bytes read + 16 bytes written per cycle (Sec. 2:
"SPE to SPE transfers can be sustained at a rate of 16 bytes (read) plus
16 bytes (write) every 16 SPU clock cycles" refers to concurrent streams;
the per-port peak is one quadword per cycle per direction), and the bus as
a whole sustains ``EIB_BANDWIDTH``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.bus import EIB_TRACK, NULL_BUS
from . import constants

#: Aggregate EIB bandwidth, bytes per SPU cycle: 204.8 GB/s / 3.2 GHz = 64.
EIB_BYTES_PER_CYCLE: float = constants.EIB_BANDWIDTH / constants.CLOCK_HZ

#: Per-port bandwidth each direction, bytes per cycle (one quadword).
PORT_BYTES_PER_CYCLE: float = float(constants.LS_PORT_BYTES_PER_CYCLE)

#: Command/arbitration latency for starting one bus transaction, cycles.
ARBITRATION_CYCLES: int = 24


@dataclass(frozen=True)
class BusCost:
    """Cycle cost of a set of concurrent bus flows."""

    total_bytes: int
    cycles: float

    @property
    def achieved_bytes_per_cycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.total_bytes / self.cycles


class EIBModel:
    """Throughput model for concurrent point-to-point flows on the EIB."""

    def __init__(self) -> None:
        #: trace bus (see ``CellBE.install_trace``).
        self.trace = NULL_BUS

    def ls_to_ls_cycles(self, nbytes: int) -> float:
        """Cycles to move ``nbytes`` between two local stores.

        Limited by the per-port rate; the bus core is 4x faster than any
        single port so a single flow never sees aggregate contention.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        cycles = ARBITRATION_CYCLES + nbytes / PORT_BYTES_PER_CYCLE
        if self.trace.enabled:
            self.trace.instant(
                EIB_TRACK, "EibFlow", flows=1, bytes=nbytes, cycles=cycles
            )
        return cycles

    def concurrent_flows_cycles(self, flow_bytes: list[int]) -> BusCost:
        """Cycles for ``len(flow_bytes)`` concurrent flows to all finish.

        Each flow is limited by its port; the set is limited by the
        aggregate EIB capacity.  Returns the makespan under the tighter of
        the two constraints (a fluid model: flows share capacity evenly).
        """
        if any(b < 0 for b in flow_bytes):
            raise ValueError("negative flow size")
        total = sum(flow_bytes)
        if total == 0:
            return BusCost(0, 0.0)
        per_port_makespan = max(b / PORT_BYTES_PER_CYCLE for b in flow_bytes)
        aggregate_makespan = total / EIB_BYTES_PER_CYCLE
        cost = BusCost(
            total, ARBITRATION_CYCLES + max(per_port_makespan, aggregate_makespan)
        )
        if self.trace.enabled:
            self.trace.instant(
                EIB_TRACK, "EibFlow", flows=len(flow_bytes), bytes=total,
                cycles=cost.cycles,
            )
        return cost

    def mic_bound_check(self, nbytes: int, mic_cycles: float) -> bool:
        """True when main memory, not the EIB, limits a transfer of
        ``nbytes`` taking ``mic_cycles`` through the MIC (the Sec. 6
        situation: 17.6 GB through 25.6 GB/s dominates)."""
        eib_cycles = nbytes / EIB_BYTES_PER_CYCLE
        return eib_cycles <= mic_cycles
