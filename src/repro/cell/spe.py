"""SPU / SPE composition: one synergistic processing element.

An SPE = SPU core + 256 KB local store + MFC (Sec. 2).  This module wires
the per-SPE pieces together and keeps per-SPE counters the performance
model reads back (kernel cycles from pipeline reports, DMA traffic from
the MFC, synchronization cycles from mailboxes/signals).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.registry import NULL_REGISTRY
from ..trace.bus import NULL_BUS
from .clock import CycleBudget
from .isa import SPUContext
from .local_store import LocalStore
from .mfc import MFC
from .mailbox import MailboxPair
from .mic import MemoryTimingModel
from .pipeline import PipelineReport, simulate
from .signals import SignalUnit
from . import constants


@dataclass
class SPUStats:
    """Aggregated compute statistics for one SPU."""

    kernel_invocations: int = 0
    cycles: float = 0.0
    flops: int = 0
    dual_issues: int = 0

    def absorb(self, report: PipelineReport, invocations: int = 1) -> None:
        """Accumulate ``invocations`` executions of a simulated kernel."""
        self.kernel_invocations += invocations
        self.cycles += report.cycles * invocations
        self.flops += report.flops * invocations
        self.dual_issues += report.dual_issues * invocations


class SPU:
    """The compute core of an SPE.

    ``run`` executes a kernel builder (a callable that populates an
    :class:`SPUContext`) functionally and charges its pipeline-simulated
    cycle cost to the SPU's statistics.
    """

    def __init__(self, spe_id: int) -> None:
        self.spe_id = spe_id
        self.stats = SPUStats()

    def context(self, name: str, double: bool = True) -> SPUContext:
        """A fresh recording context for one kernel body."""
        return SPUContext(f"spe{self.spe_id}:{name}", double=double)

    def retire(self, ctx: SPUContext, invocations: int = 1) -> PipelineReport:
        """Pipeline-simulate a finished context and absorb its cost."""
        report = simulate(ctx.stream)
        self.stats.absorb(report, invocations)
        return report


class SPE:
    """One synergistic processing element: SPU + LS + MFC + sync units."""

    def __init__(
        self,
        spe_id: int,
        timing: MemoryTimingModel | None = None,
        ls_capacity: int = constants.LOCAL_STORE_BYTES,
        code_bytes: int = 24 * 1024,
    ) -> None:
        """``code_bytes`` reserves local store for the SPU program image;
        24 KB is representative of the paper's compute kernel plus the
        runtime stub."""
        self.spe_id = spe_id
        self.spu = SPU(spe_id)
        self.local_store = LocalStore(ls_capacity, reserved_code_bytes=code_bytes)
        self.mfc = MFC(spe_id, timing=timing)
        self.mailboxes = MailboxPair(spe_id)
        self.signals = SignalUnit(spe_id)
        #: synchronization cycle costs attributed to this SPE
        self.sync_budget = CycleBudget()
        #: trace bus shared chip-wide (see ``CellBE.install_trace``)
        self.trace = NULL_BUS
        #: metrics registry shared chip-wide (see ``CellBE.install_metrics``)
        self.metrics = NULL_REGISTRY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SPE(id={self.spe_id}, ls_used={self.local_store.used_bytes}, "
            f"dma_bytes={self.mfc.stats.total_bytes})"
        )
