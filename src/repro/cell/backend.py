"""Array-ops backends for compiled ISA programs.

:class:`~repro.cell.isa_compile.CompiledProgram` lowers every SPU kernel
into a flat list of whole-array operations over a leading batch axis --
exactly the shape an accelerator wants.  This module makes the array
substrate pluggable: a backend supplies the 13 lowered op tags
(including the exact two-operation ``madd``/``nmsub`` grouping, the
``where``-select and the compare-to-dtype mask), host transfer hooks
(``from_host``/``to_host``) and scratch allocation, and
``CompiledProgram.run`` becomes a thin driver that dispatches through
the backend's op table.

The **numpy backend** is the reference: bit-identical to the
interpreting :class:`~repro.cell.isa.SPUContext` (``exact = True``,
enforced with ``assert_array_equal`` by the fuzz referees) and the only
backend with ``supports_out = True`` -- every op can write a
preallocated destination, which lets the optimizer's liveness-derived
buffer plan replay a program with a fixed pool of scratch arrays
instead of one fresh temporary per op.

GPU/tensor backends (:mod:`repro.cell.backend_torch`,
:mod:`repro.cell.backend_cupy`) follow the generate-once / memoize /
replay idiom of the pycuda exemplar named in ROADMAP: the program is
traced once, the backend's op table is built once per program, and
replays just stream batches through it.  They are optional -- resolved
lazily, reporting :func:`backend_status` without raising, and raising
:class:`~repro.errors.ConfigurationError` only when explicitly selected
while unavailable -- so CPU-only hosts and CI stay green.

Aliasing contract for ``out=`` implementations: the caller (the buffer
plan in ``isa_compile``) guarantees the destination buffer never
aliases an operand of the same op, so multi-step lowerings
(``multiply`` then ``add`` for madd, mask-then-``copyto`` for select)
are safe.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from .isa_compile import (
    OP_ADD,
    OP_AND,
    OP_CMPGT,
    OP_DIV,
    OP_MADD,
    OP_MSUB,
    OP_MUL,
    OP_NMSUB,
    OP_OR,
    OP_SEL,
    OP_SUB,
)

#: Backend names the resolver knows, in documentation order.
KNOWN_BACKENDS: tuple[str, ...] = ("numpy", "torch", "cupy")


class ArrayBackend:
    """Interface a compiled-program executor runs against.

    Concrete backends set the class attributes and implement the
    allocation / transfer hooks plus :meth:`op_table`.

    ``exact``
        True when the backend reproduces the interpreter bit for bit
        (numpy).  Exact backends are refereed with
        ``assert_array_equal``; inexact ones against the documented
        tolerance (``docs/PERFORMANCE.md``).
    ``supports_out``
        True when every op accepts a preallocated destination array, so
        the optimizer's buffer-reuse plan applies.
    ``is_host``
        True when arrays are host numpy arrays (``from_host``/``to_host``
        are identity and the driver skips the transfer loops).
    """

    name: str = "abstract"
    exact: bool = False
    supports_out: bool = False
    is_host: bool = False

    # -- transfers -------------------------------------------------------

    def from_host(self, array: np.ndarray):
        """Move one host input batch onto the backend's device."""
        raise NotImplementedError

    def to_host(self, array) -> np.ndarray:
        """Move one output batch back to a host numpy array."""
        raise NotImplementedError

    # -- allocation ------------------------------------------------------

    def alloc(self, n: int, dtype):
        """A fresh uninitialized ``(n,)`` device scratch array."""
        raise NotImplementedError

    def alloc_bool(self, n: int):
        """A fresh ``(n,)`` boolean device scratch array (mask temps)."""
        raise NotImplementedError

    def empty_like(self, array):
        """An uninitialized device array shaped like ``array``."""
        raise NotImplementedError

    def constants(self, values: Sequence, dtype) -> tuple:
        """Typed per-backend representation of the program constants.

        The representation must not promote: a float32 program's
        constants round exactly like the interpreter's splatted float32
        vectors.
        """
        raise NotImplementedError

    # -- the op table ----------------------------------------------------

    def op_table(self, dtype) -> dict[int, Callable]:
        """Map each arithmetic op tag to ``fn(a, b, c, out, tmp)``.

        ``out`` is either ``None`` (allocate the result) or a
        preallocated destination that never aliases an operand; ``tmp``
        is a tuple of boolean scratch arrays (only read when ``out`` is
        given).  Unused operands arrive as ``None``.  Every
        implementation must preserve the interpreter's grouping:
        madd/msub are the two-operation ``a*b +- c``, nmsub is
        ``c - a*b`` (no FMA contraction), cmpgt/or/and produce
        ``{0, 1}`` masks in ``dtype``, and sel is
        ``where(mask != 0, b, a)``.
        """
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """The reference backend: host numpy, bit-identical, ``out=`` capable."""

    name = "numpy"
    exact = True
    supports_out = True
    is_host = True

    def from_host(self, array: np.ndarray) -> np.ndarray:
        return array

    def to_host(self, array: np.ndarray) -> np.ndarray:
        return array

    def alloc(self, n: int, dtype) -> np.ndarray:
        return np.empty(n, dtype=dtype)

    def alloc_bool(self, n: int) -> np.ndarray:
        return np.empty(n, dtype=bool)

    def empty_like(self, array: np.ndarray) -> np.ndarray:
        return np.empty_like(array)

    def constants(self, values: Sequence, dtype) -> tuple:
        # dtype-typed scalars so broadcasting never promotes: a float32
        # op with a float32 scalar rounds exactly like the interpreter's
        # splatted constant vector.
        return tuple(dtype(v) for v in values)

    def op_table(self, dtype) -> dict[int, Callable]:
        # Each out= body evaluates the very same elementwise expression
        # as the allocate path, one rounding at a time -- ufuncs with
        # out= round identically, and a bool->dtype assignment casts
        # exactly like .astype.
        def add(a, b, c, out, tmp):
            if out is None:
                return a + b
            return np.add(a, b, out=out)

        def sub(a, b, c, out, tmp):
            if out is None:
                return a - b
            return np.subtract(a, b, out=out)

        def mul(a, b, c, out, tmp):
            if out is None:
                return a * b
            return np.multiply(a, b, out=out)

        def div(a, b, c, out, tmp):
            if out is None:
                return a / b
            return np.divide(a, b, out=out)

        def madd(a, b, c, out, tmp):
            if out is None:
                return a * b + c
            np.multiply(a, b, out=out)
            return np.add(out, c, out=out)

        def msub(a, b, c, out, tmp):
            if out is None:
                return a * b - c
            np.multiply(a, b, out=out)
            return np.subtract(out, c, out=out)

        def nmsub(a, b, c, out, tmp):
            if out is None:
                return c - a * b
            np.multiply(a, b, out=out)
            return np.subtract(c, out, out=out)

        def cmpgt(a, b, c, out, tmp):
            if out is None:
                return (a > b).astype(dtype)
            np.greater(a, b, out=tmp[0])
            out[...] = tmp[0]
            return out

        def or_(a, b, c, out, tmp):
            if out is None:
                return ((a != 0) | (b != 0)).astype(dtype)
            np.not_equal(a, 0, out=tmp[0])
            np.not_equal(b, 0, out=tmp[1])
            np.logical_or(tmp[0], tmp[1], out=tmp[0])
            out[...] = tmp[0]
            return out

        def and_(a, b, c, out, tmp):
            if out is None:
                return ((a != 0) & (b != 0)).astype(dtype)
            np.not_equal(a, 0, out=tmp[0])
            np.not_equal(b, 0, out=tmp[1])
            np.logical_and(tmp[0], tmp[1], out=tmp[0])
            out[...] = tmp[0]
            return out

        def sel(a, b, c, out, tmp):
            if out is None:
                return np.where(c != 0, b, a)
            np.not_equal(c, 0, out=tmp[0])
            np.copyto(out, a)
            np.copyto(out, b, where=tmp[0])
            return out

        return {
            OP_ADD: add,
            OP_SUB: sub,
            OP_MUL: mul,
            OP_DIV: div,
            OP_MADD: madd,
            OP_MSUB: msub,
            OP_NMSUB: nmsub,
            OP_CMPGT: cmpgt,
            OP_OR: or_,
            OP_AND: and_,
            OP_SEL: sel,
        }


# -- resolution --------------------------------------------------------------

_INSTANCES: dict[str, ArrayBackend] = {}


def numpy_backend() -> NumpyBackend:
    """The process-wide reference backend instance."""
    backend = _INSTANCES.get("numpy")
    if backend is None:
        backend = _INSTANCES["numpy"] = NumpyBackend()
    return backend


def resolve_backend(spec: "str | ArrayBackend | None") -> ArrayBackend:
    """Resolve a backend name (``MachineConfig.array_backend``,
    ``solve --backend``) to a live backend instance, memoized per
    process so warm per-program state is shared.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names
    and for optional backends whose library or device is absent -- the
    error says why, so ``solve --backend torch`` on a host without
    torch fails with a message instead of a traceback.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    name = spec or "numpy"
    backend = _INSTANCES.get(name)
    if backend is not None:
        return backend
    if name == "numpy":
        return numpy_backend()
    if name == "torch":
        from .backend_torch import create_torch_backend

        backend = create_torch_backend()
    elif name == "cupy":
        from .backend_cupy import create_cupy_backend

        backend = create_cupy_backend()
    else:
        raise ConfigurationError(
            f"unknown array backend {name!r}; known backends: "
            + ", ".join(KNOWN_BACKENDS)
        )
    _INSTANCES[name] = backend
    return backend


def backend_status() -> dict[str, dict]:
    """Availability of every known backend, without raising.

    ``{"numpy": {"available": True, "exact": True, ...}, ...}`` -- what
    ``repro metrics`` and the CLI error paths report.
    """
    status: dict[str, dict] = {
        "numpy": {
            "available": True,
            "exact": True,
            "supports_out": True,
            "detail": "reference backend (always available)",
        }
    }
    from .backend_cupy import cupy_status
    from .backend_torch import torch_status

    status["torch"] = torch_status()
    status["cupy"] = cupy_status()
    return status


def available_backends() -> list[str]:
    """Names of the backends that would resolve on this host."""
    return [name for name, st in backend_status().items() if st["available"]]
