"""DMA commands, DMA lists, and the simulated main-memory address space.

The MFC moves data between an SPE local store and "effective addresses"
(EAs) in main memory.  The architecture imposes hard rules (Sec. 2, "DMA
Transfers") which this module enforces exactly:

* a single transfer is 1, 2, 4 or 8 bytes, or a multiple of 16 bytes up to
  16 KB;
* source and destination must be naturally aligned (16-byte alignment for
  quadword-granular transfers);
* peak performance requires both EA and LS address 128-byte aligned and a
  size that is a multiple of 128 bytes;
* a DMA *list* bundles up to 2,048 transfers under one MFC command, and
  only the SPU that owns the MFC can issue list commands.

Main memory is modelled by :class:`AddressSpace`, which assigns effective
addresses to real NumPy arrays.  Addresses matter because the memory
controller interleaves 128-byte blocks across 16 banks; the paper's
"adding offsets to the array allocation to more fairly spread the memory
accesses across the 16 main memory banks" (Sec. 5) is reproduced by the
``bank_offset`` argument of :meth:`AddressSpace.allocate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property

import numpy as np

from ..errors import DMAError
from ..units import align_up, is_aligned
from . import constants
from .local_store import LSBuffer


class DMAKind(Enum):
    """Transfer direction, named from the SPE's point of view."""

    GET = "get"   # main memory -> local store
    PUT = "put"   # local store -> main memory


def validate_transfer_size(size: int) -> None:
    """Enforce the CBEA transfer-size rule; raises :class:`DMAError`."""
    if size in constants.DMA_SMALL_SIZES:
        return
    if size <= 0:
        raise DMAError(f"DMA size must be positive, got {size}")
    if size % constants.DMA_QUANTUM:
        raise DMAError(
            f"DMA size {size} is not 1/2/4/8 bytes or a multiple of "
            f"{constants.DMA_QUANTUM} bytes"
        )
    if size > constants.DMA_MAX_BYTES:
        raise DMAError(
            f"DMA size {size} exceeds the {constants.DMA_MAX_BYTES}-byte maximum; "
            f"use a DMA list"
        )


def validate_alignment(ea: int, ls_offset: int, size: int) -> None:
    """Enforce natural-alignment rules for one transfer."""
    unit = size if size in constants.DMA_SMALL_SIZES else constants.DMA_QUANTUM
    if not is_aligned(ea, unit):
        raise DMAError(f"effective address {ea:#x} not {unit}-byte aligned")
    if not is_aligned(ls_offset, unit):
        raise DMAError(f"local-store offset {ls_offset:#x} not {unit}-byte aligned")


def is_peak_rate(ea: int, ls_offset: int, size: int) -> bool:
    """True when the transfer qualifies for peak bandwidth.

    "Peak performance can be achieved for transfers when both the EA and
    LSA are 128-byte aligned and the size of the transfer is an even
    multiple of 128 bytes" (Sec. 2).
    """
    line = constants.CACHE_LINE_BYTES
    return (
        is_aligned(ea, line)
        and is_aligned(ls_offset, line)
        and size % line == 0
        and size > 0
    )


@dataclass
class HostArray:
    """A main-memory resident array with an assigned effective address."""

    name: str
    ea: int
    data: np.ndarray = field(repr=False)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @cached_property
    def _bytes(self) -> np.ndarray:
        # ``data`` is made contiguous by AddressSpace.allocate, so this is
        # a genuine view over the live storage and can be cached safely.
        return np.ascontiguousarray(self.data).view(np.uint8).reshape(-1)

    def bytes_view(self) -> np.ndarray:
        """Flat ``uint8`` view over the array storage."""
        return self._bytes

    def ea_of(self, byte_offset: int) -> int:
        """Effective address of a byte offset within this array."""
        if not 0 <= byte_offset <= self.nbytes:
            raise DMAError(
                f"offset {byte_offset} outside array {self.name!r} "
                f"({self.nbytes} bytes)"
            )
        return self.ea + byte_offset


class AddressSpace:
    """Assigns effective addresses to host arrays.

    ``allocate`` mimics an aligned allocator: each array is placed at the
    next address with the requested alignment, plus an optional
    ``bank_offset`` measured in 128-byte memory-bank strides.  Staggering
    the bank offset of successive row allocations is exactly the paper's
    bank-spreading optimization.
    """

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base
        self._arrays: dict[str, HostArray] = {}

    def allocate(
        self,
        name: str,
        data: np.ndarray,
        alignment: int = constants.CACHE_LINE_BYTES,
        bank_offset: int = 0,
    ) -> HostArray:
        """Register ``data`` (not copied) at a fresh effective address."""
        if name in self._arrays:
            raise DMAError(f"array {name!r} already allocated")
        if not 0 <= bank_offset < constants.NUM_MEMORY_BANKS:
            raise DMAError(
                f"bank offset must be in [0, {constants.NUM_MEMORY_BANKS}), "
                f"got {bank_offset}"
            )
        data = np.ascontiguousarray(data)
        ea = align_up(self._next, alignment)
        ea += bank_offset * constants.MEMORY_BANK_STRIDE
        arr = HostArray(name, ea, data)
        self._arrays[name] = arr
        self._next = ea + data.nbytes
        return arr

    def __getitem__(self, name: str) -> HostArray:
        return self._arrays[name]

    def arrays(self) -> list[HostArray]:
        return list(self._arrays.values())


def bank_of(ea: int) -> int:
    """Memory bank holding the 128-byte block at ``ea``."""
    return (ea // constants.MEMORY_BANK_STRIDE) % constants.NUM_MEMORY_BANKS


@dataclass(frozen=True)
class DMAElement:
    """One (EA, size) element of a transfer or a DMA list."""

    ea: int
    size: int

    def banks(self) -> list[int]:
        """The memory banks this element's 128-byte blocks touch."""
        stride = constants.MEMORY_BANK_STRIDE
        first = self.ea // stride
        last = (self.ea + max(self.size, 1) - 1) // stride
        return [(b % constants.NUM_MEMORY_BANKS) for b in range(first, last + 1)]


@dataclass
class DMACommand:
    """A single validated MFC DMA command."""

    kind: DMAKind
    host: HostArray
    host_offset: int
    ls_buffer: LSBuffer
    ls_offset: int
    size: int
    tag: int = 0

    def __post_init__(self) -> None:
        validate_transfer_size(self.size)
        if not 0 <= self.tag < 32:
            raise DMAError(f"MFC tag must be in [0, 32), got {self.tag}")
        if self.host_offset + self.size > self.host.nbytes:
            raise DMAError(
                f"transfer of {self.size} B at host offset {self.host_offset} "
                f"overruns array {self.host.name!r} ({self.host.nbytes} B)"
            )
        if self.ls_offset + self.size > self.ls_buffer.nbytes:
            raise DMAError(
                f"transfer of {self.size} B at LS offset {self.ls_offset} "
                f"overruns buffer {self.ls_buffer.label!r} "
                f"({self.ls_buffer.nbytes} B)"
            )
        ea = self.host.ea_of(self.host_offset)
        validate_alignment(ea, self.ls_buffer.offset + self.ls_offset, self.size)

    @property
    def ea(self) -> int:
        return self.host.ea_of(self.host_offset)

    @property
    def peak_rate(self) -> bool:
        return is_peak_rate(self.ea, self.ls_buffer.offset + self.ls_offset, self.size)

    @cached_property
    def cost_signature(self) -> tuple:
        """Hashable address signature of everything the MIC timing model
        and the MFC traffic accounting read from this command."""
        return ("cmd", self.kind.value, self.ea, self.size)

    def ls_regions(self) -> tuple[tuple[int, int], ...]:
        """Absolute local-store (start, size) byte ranges this command
        reads or writes -- the footprint the trace sanitizer checks for
        overlap with other in-flight commands."""
        return ((self.ls_buffer.offset + self.ls_offset, self.size),)

    def elements(self) -> list[DMAElement]:
        return [DMAElement(self.ea, self.size)]

    @property
    def total_bytes(self) -> int:
        return self.size

    def execute(self) -> None:
        """Perform the copy between host memory and the local store."""
        hview = self.host.bytes_view()[self.host_offset : self.host_offset + self.size]
        lview = self.ls_buffer.as_bytes()[self.ls_offset : self.ls_offset + self.size]
        if self.kind is DMAKind.GET:
            lview[:] = hview
        else:
            hview[:] = lview


@dataclass
class DMAListCommand:
    """A DMA-list command: many (EA, size) elements, one LS region.

    List elements fill the local-store region contiguously in order, which
    is how Sweep3D's strided rows are gathered into a dense working set.
    """

    kind: DMAKind
    host: HostArray
    elements_spec: list[tuple[int, int]]  # (host byte offset, size)
    ls_buffer: LSBuffer
    ls_offset: int = 0
    tag: int = 0

    def __post_init__(self) -> None:
        if not self.elements_spec:
            raise DMAError("DMA list must contain at least one element")
        if len(self.elements_spec) > constants.DMA_LIST_MAX_ELEMENTS:
            raise DMAError(
                f"DMA list of {len(self.elements_spec)} elements exceeds the "
                f"{constants.DMA_LIST_MAX_ELEMENTS}-element maximum"
            )
        if not 0 <= self.tag < 32:
            raise DMAError(f"MFC tag must be in [0, 32), got {self.tag}")
        cursor = self.ls_offset
        for off, size in self.elements_spec:
            validate_transfer_size(size)
            if off + size > self.host.nbytes:
                raise DMAError(
                    f"list element ({off}, {size}) overruns array "
                    f"{self.host.name!r} ({self.host.nbytes} B)"
                )
            validate_alignment(
                self.host.ea_of(off), self.ls_buffer.offset + cursor, size
            )
            cursor += size
        if cursor > self.ls_buffer.nbytes:
            raise DMAError(
                f"DMA list of {cursor - self.ls_offset} B overruns LS buffer "
                f"{self.ls_buffer.label!r} ({self.ls_buffer.nbytes} B)"
            )

    @property
    def total_bytes(self) -> int:
        return sum(size for _, size in self.elements_spec)

    @cached_property
    def cost_signature(self) -> tuple:
        """Hashable address signature of everything the MIC timing model
        and the MFC traffic accounting read from this command (element
        EAs, sizes, element count, direction)."""
        return (
            "list",
            self.kind.value,
            tuple((self.host.ea_of(off), size) for off, size in self.elements_spec),
        )

    def ls_regions(self) -> tuple[tuple[int, int], ...]:
        """List elements fill the local store contiguously from
        ``ls_offset``, so the footprint is one dense range."""
        return (
            (self.ls_buffer.offset + self.ls_offset, self.total_bytes),
        )

    @property
    def peak_rate(self) -> bool:
        cursor = self.ls_offset
        ok = True
        for off, size in self.elements_spec:
            ok = ok and is_peak_rate(
                self.host.ea_of(off), self.ls_buffer.offset + cursor, size
            )
            cursor += size
        return ok

    def elements(self) -> list[DMAElement]:
        return [DMAElement(self.host.ea_of(off), size) for off, size in self.elements_spec]

    def execute(self) -> None:
        hview = self.host.bytes_view()
        lview = self.ls_buffer.as_bytes()
        cursor = self.ls_offset
        for off, size in self.elements_spec:
            if self.kind is DMAKind.GET:
                lview[cursor : cursor + size] = hview[off : off + size]
            else:
                hview[off : off + size] = lview[cursor : cursor + size]
            cursor += size


@dataclass
class LSToLSCommand:
    """An SPE-to-SPE local-store transfer.

    "DMA operations can transfer data between the local store and any
    resources connected via the on-chip interconnect (i.e. main memory,
    the LS of another SPE, or an I/O device)" (Sec. 2).  LS-to-LS moves
    ride the EIB only -- they never touch the 25.6 GB/s memory interface,
    which is why the architecture can sustain them at per-port rates.
    """

    kind: DMAKind              # GET: remote -> local; PUT: local -> remote
    remote: LSBuffer           # the other SPE's buffer
    remote_offset: int
    ls_buffer: LSBuffer        # the issuing SPE's buffer
    ls_offset: int
    size: int
    tag: int = 0

    def __post_init__(self) -> None:
        validate_transfer_size(self.size)
        if not 0 <= self.tag < 32:
            raise DMAError(f"MFC tag must be in [0, 32), got {self.tag}")
        for name, buf, off in (
            ("remote", self.remote, self.remote_offset),
            ("local", self.ls_buffer, self.ls_offset),
        ):
            if off + self.size > buf.nbytes:
                raise DMAError(
                    f"LS-to-LS transfer of {self.size} B at {name} offset "
                    f"{off} overruns buffer {buf.label!r} ({buf.nbytes} B)"
                )
        validate_alignment(
            self.remote.offset + self.remote_offset,
            self.ls_buffer.offset + self.ls_offset,
            self.size,
        )

    @property
    def total_bytes(self) -> int:
        return self.size

    @cached_property
    def cost_signature(self) -> tuple:
        """Hashable signature for MIC cost memoization (LS-to-LS moves
        touch no memory banks; only size and direction matter)."""
        return ("lsls", self.kind.value, self.size)

    def ls_regions(self) -> tuple[tuple[int, int], ...]:
        """The issuing SPE's local footprint (the remote store belongs
        to another track; its MFC sees nothing of this command)."""
        return ((self.ls_buffer.offset + self.ls_offset, self.size),)

    def elements(self) -> list[DMAElement]:
        """LS-to-LS transfers touch no main-memory banks."""
        return []

    def execute(self) -> None:
        rview = self.remote.as_bytes()[
            self.remote_offset : self.remote_offset + self.size
        ]
        lview = self.ls_buffer.as_bytes()[
            self.ls_offset : self.ls_offset + self.size
        ]
        if self.kind is DMAKind.GET:
            lview[:] = rview
        else:
            rview[:] = lview


AnyDMACommand = DMACommand | DMAListCommand | LSToLSCommand
