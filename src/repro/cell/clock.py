"""Cycle accounting shared by the Cell BE timing models.

The simulator keeps all on-chip delays in SPU cycles and converts to
seconds only at reporting time, so that every model constant can be stated
the way the Cell documentation states it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import constants
from ..units import cycles_to_seconds


@dataclass
class CycleClock:
    """A monotonically advancing cycle counter.

    Components that model time (MFC queues, mailboxes, the pipeline
    simulator) advance a :class:`CycleClock`; the performance model reads
    it back in seconds.
    """

    frequency_hz: float = constants.CLOCK_HZ
    cycle: int = 0

    def advance(self, cycles: int) -> int:
        """Advance by ``cycles`` (non-negative) and return the new time."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative cycles: {cycles}")
        self.cycle += int(cycles)
        return self.cycle

    def advance_to(self, cycle: int) -> int:
        """Advance to absolute ``cycle`` if it is in the future."""
        if cycle > self.cycle:
            self.cycle = int(cycle)
        return self.cycle

    @property
    def seconds(self) -> float:
        """Elapsed wall-clock time represented by this counter."""
        return cycles_to_seconds(self.cycle, self.frequency_hz)

    def reset(self) -> None:
        """Reset to cycle zero (used between benchmark configurations)."""
        self.cycle = 0


@dataclass
class CycleBudget:
    """Accumulates named cycle costs for a timing breakdown.

    Used by the discrete-event model to attribute time to compute, DMA,
    synchronization and scheduling, mirroring the decomposition the paper
    uses in Sec. 6 to explain the gap between the 0.7 s bound and the
    1.33 s measured run time.
    """

    buckets: dict[str, float] = field(default_factory=dict)

    def charge(self, bucket: str, cycles: float) -> None:
        """Add ``cycles`` to ``bucket`` (creating it on first use)."""
        if cycles < 0:
            raise ValueError(f"cannot charge negative cycles to {bucket!r}: {cycles}")
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + cycles

    def total(self) -> float:
        """Sum of all buckets, in cycles."""
        return sum(self.buckets.values())

    def seconds(self, frequency_hz: float = constants.CLOCK_HZ) -> dict[str, float]:
        """The breakdown converted to seconds."""
        return {
            name: cycles_to_seconds(cyc, frequency_hz)
            for name, cyc in self.buckets.items()
        }

    def merge(self, other: "CycleBudget") -> None:
        """Accumulate another budget into this one, bucket by bucket."""
        for name, cyc in other.buckets.items():
            self.charge(name, cyc)
