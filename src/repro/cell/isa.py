"""Functional SPU SIMD instruction set over NumPy, with recording.

The paper's kernel (Figures 6-8) is written with SPU intrinsics:
``spu_splats`` replicates a scalar across a vector, ``spu_madd`` performs a
2-way double-precision fused multiply-add, and so on.  This module provides
those intrinsics as *functional* operations on 128-bit vector values backed
by NumPy, and simultaneously records every executed instruction into an
:class:`InstructionStream`.

The recorded stream is what :mod:`repro.cell.pipeline` replays through the
dual-issue in-order SPU pipeline model to obtain the cycle counts of
Sec. 5.1 (590 cycles / 216 flops with fixups off, 1690 with fixups on, the
~5 % dual-issue rate, and the 64 % / 25 % of peak efficiencies).

Two dtypes are supported, matching the SPU's floating-point granularities:

* ``float64`` -- 2 lanes per vector ("2 64-bit double-precision numbers"),
* ``float32`` -- 4 lanes per vector.

A deliberate modelling choice: the SPU has no hardware double-precision
divide; real Cell code computes reciprocals with a single-precision
estimate (``frest``/``fi``) refined by Newton-Raphson ``fnms``/``fma``
steps.  :func:`spu_div` *records* that instruction sequence (so timing is
faithful) but *computes* the exact IEEE quotient (so the simulated solver
matches the NumPy reference bit-for-bit).  This substitution is documented
in DESIGN.md.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import PipelineError
from . import constants


class Pipe(Enum):
    """The two SPU issue pipes (Sec. 2: "2 instruction pipelines")."""

    #: Floating point and fixed point units.
    EVEN = "even"
    #: Loads/stores, shuffles, branches, channel instructions.
    ODD = "odd"


class OpClass(Enum):
    """Latency classes of SPU instructions.

    Latencies follow the public Cell BE Handbook instruction tables; the
    double-precision class additionally blocks issue for
    ``DP_ISSUE_INTERVAL_CYCLES - 1`` cycles ("two double-precision flops
    every seven SPU clocks").
    """

    SP_FLOAT = "sp_float"     # single-precision FP arithmetic (even, 6)
    DP_FLOAT = "dp_float"     # double-precision FP arithmetic (even, 13, blocking)
    FIXED = "fixed"           # word fixed-point arithmetic (even, 2)
    BYTE = "byte"             # select / logical ops (even, 2)
    LOAD = "load"             # quadword load (odd, 6)
    STORE = "store"           # quadword store (odd, 6)
    SHUFFLE = "shuffle"       # shufb & friends, incl. splats (odd, 4)
    BRANCH = "branch"         # branches and hints (odd, 4)
    CHANNEL = "channel"       # channel reads/writes, e.g. MFC commands (odd, 6)
    NOP = "nop"               # explicit nops used for alignment (either, 1)


#: (pipe, result latency in cycles) for every op class.
OP_TABLE: dict[OpClass, tuple[Pipe, int]] = {
    OpClass.SP_FLOAT: (Pipe.EVEN, 6),
    OpClass.DP_FLOAT: (Pipe.EVEN, 13),
    OpClass.FIXED: (Pipe.EVEN, 2),
    OpClass.BYTE: (Pipe.EVEN, 2),
    OpClass.LOAD: (Pipe.ODD, 6),
    OpClass.STORE: (Pipe.ODD, 6),
    OpClass.SHUFFLE: (Pipe.ODD, 4),
    OpClass.BRANCH: (Pipe.ODD, 4),
    OpClass.CHANNEL: (Pipe.ODD, 6),
    OpClass.NOP: (Pipe.EVEN, 1),
}

#: Extra full-pipeline issue block after a DP instruction: the SPU stalls
#: all issue for 6 cycles after each double-precision operation.
DP_ISSUE_BLOCK: int = constants.DP_ISSUE_INTERVAL_CYCLES - 1


@dataclass(frozen=True)
class Instruction:
    """One recorded SPU instruction.

    ``dest`` and ``srcs`` are virtual register names; the pipeline model
    uses them to track read-after-write dependencies.  ``flops`` is the
    number of floating-point operations the instruction contributes to the
    efficiency accounting (a 2-way DP fma counts 4; a 2-way DP mul counts
    2; loads count 0).
    """

    opcode: str
    opclass: OpClass
    dest: str | None
    srcs: tuple[str, ...] = ()
    flops: int = 0

    @property
    def pipe(self) -> Pipe:
        return OP_TABLE[self.opclass][0]

    @property
    def latency(self) -> int:
        return OP_TABLE[self.opclass][1]


class InstructionStream:
    """An ordered list of recorded instructions with flop accounting."""

    def __init__(self, name: str = "kernel") -> None:
        self.name = name
        self.instructions: list[Instruction] = []
        self._reg_counter = itertools.count()

    def new_reg(self, prefix: str = "v") -> str:
        """Allocate a fresh virtual register name."""
        return f"{prefix}{next(self._reg_counter)}"

    def emit(
        self,
        opcode: str,
        opclass: OpClass,
        dest: str | None,
        srcs: Sequence[str] = (),
        flops: int = 0,
    ) -> Instruction:
        """Append one instruction and return it."""
        instr = Instruction(opcode, opclass, dest, tuple(srcs), flops)
        self.instructions.append(instr)
        return instr

    def extend(self, other: "InstructionStream") -> None:
        """Append all instructions from ``other``."""
        self.instructions.extend(other.instructions)

    @property
    def flops(self) -> int:
        """Total floating-point operations in the stream."""
        return sum(i.flops for i in self.instructions)

    def count(self, opclass: OpClass) -> int:
        """Number of instructions of a given class."""
        return sum(1 for i in self.instructions if i.opclass is opclass)

    def signature(self) -> tuple:
        """A hashable identity of the recorded stream.

        Two streams with equal signatures schedule identically on the
        pipeline model (its output is a pure function of the instruction
        sequence), which is what lets :mod:`repro.cell.pipeline` memoize
        :class:`PipelineReport` per signature and
        :mod:`repro.cell.isa_compile` key compiled programs on it.
        :class:`Instruction` is frozen, so the tuple is hashable.
        """
        return (self.name, tuple(self.instructions))

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)


@dataclass
class Vec:
    """A 128-bit SPU vector value.

    ``data`` is a NumPy array whose total size is 16 bytes: 2 ``float64``
    lanes or 4 ``float32`` lanes.  ``reg`` is the virtual register holding
    the value, used for dependency tracking when the vector participates in
    further recorded operations.
    """

    data: np.ndarray
    reg: str

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.data.dtype not in (np.float64, np.float32):
            raise PipelineError(f"unsupported vector dtype {self.data.dtype}")
        if self.data.nbytes != constants.VECTOR_BYTES:
            raise PipelineError(
                f"SPU vectors are {constants.VECTOR_BYTES} bytes; "
                f"got {self.data.nbytes} bytes"
            )

    @property
    def lanes(self) -> int:
        return self.data.size

    @property
    def is_double(self) -> bool:
        return self.data.dtype == np.float64


class SPUContext:
    """Execution context tying functional vectors to a recorded stream.

    One :class:`SPUContext` corresponds to one compiled kernel body: the
    paper's Figure 7 code becomes a sequence of calls on a context, and the
    context's :attr:`stream` is then fed to the pipeline simulator.
    """

    def __init__(self, name: str = "kernel", double: bool = True) -> None:
        self.stream = InstructionStream(name)
        self.double = double
        self._dtype = np.float64 if double else np.float32

    # -- helpers ---------------------------------------------------------

    @property
    def lanes(self) -> int:
        """SIMD width for the context's precision."""
        return constants.DP_LANES if self.double else constants.SP_LANES

    def _float_class(self) -> OpClass:
        return OpClass.DP_FLOAT if self.double else OpClass.SP_FLOAT

    def _fma_flops(self) -> int:
        return 2 * self.lanes

    def _vec(self, data: np.ndarray, reg: str) -> Vec:
        return Vec(np.asarray(data, dtype=self._dtype), reg)

    def _check(self, *vecs: Vec) -> None:
        for v in vecs:
            if v.is_double != self.double:
                raise PipelineError(
                    f"precision mismatch: context is "
                    f"{'double' if self.double else 'single'}, vector {v.reg} is not"
                )

    # -- loads / stores / constants -------------------------------------

    def spu_splats(self, scalar: float) -> Vec:
        """Replicate ``scalar`` across all lanes (paper Fig. 7, line 4-7).

        ``spu_splats`` assembles to a shuffle on the odd pipe.
        """
        reg = self.stream.new_reg()
        self.stream.emit("splats", OpClass.SHUFFLE, reg)
        return self._vec(np.full(self.lanes, scalar, dtype=self._dtype), reg)

    def lqd(self, source: np.ndarray, label: str = "mem") -> Vec:
        """Quadword load from local store.

        ``source`` must hold exactly one vector's worth of lanes.
        """
        arr = np.asarray(source, dtype=self._dtype)
        if arr.size != self.lanes:
            raise PipelineError(
                f"lqd expects {self.lanes} lanes, got {arr.size} from {label}"
            )
        reg = self.stream.new_reg()
        self.stream.emit("lqd", OpClass.LOAD, reg, (label,))
        return self._vec(arr.copy(), reg)

    def stqd(self, value: Vec, target: np.ndarray, label: str = "mem") -> None:
        """Quadword store to local store (writes through to ``target``)."""
        self._check(value)
        target = np.asarray(target)
        if target.size != self.lanes:
            raise PipelineError(
                f"stqd expects {self.lanes} lanes, got {target.size} at {label}"
            )
        self.stream.emit("stqd", OpClass.STORE, None, (value.reg,))
        target[...] = value.data.reshape(target.shape)

    # -- arithmetic ------------------------------------------------------

    def _binary(self, opcode: str, a: Vec, b: Vec, op, flops: int) -> Vec:
        self._check(a, b)
        reg = self.stream.new_reg()
        self.stream.emit(opcode, self._float_class(), reg, (a.reg, b.reg), flops)
        return self._vec(op(a.data, b.data), reg)

    def spu_add(self, a: Vec, b: Vec) -> Vec:
        """Lane-wise addition."""
        return self._binary("fa", a, b, np.add, self.lanes)

    def spu_sub(self, a: Vec, b: Vec) -> Vec:
        """Lane-wise subtraction."""
        return self._binary("fs", a, b, np.subtract, self.lanes)

    def spu_mul(self, a: Vec, b: Vec) -> Vec:
        """Lane-wise multiplication (paper Fig. 7, lines 9-12)."""
        return self._binary("fm", a, b, np.multiply, self.lanes)

    def spu_madd(self, a: Vec, b: Vec, c: Vec) -> Vec:
        """Fused multiply-add ``a*b + c`` (paper Fig. 7, lines 21-24)."""
        self._check(a, b, c)
        reg = self.stream.new_reg()
        self.stream.emit(
            "fma", self._float_class(), reg, (a.reg, b.reg, c.reg), self._fma_flops()
        )
        return self._vec(a.data * b.data + c.data, reg)

    def spu_msub(self, a: Vec, b: Vec, c: Vec) -> Vec:
        """Fused multiply-subtract ``a*b - c``."""
        self._check(a, b, c)
        reg = self.stream.new_reg()
        self.stream.emit(
            "fms", self._float_class(), reg, (a.reg, b.reg, c.reg), self._fma_flops()
        )
        return self._vec(a.data * b.data - c.data, reg)

    def spu_nmsub(self, a: Vec, b: Vec, c: Vec) -> Vec:
        """Fused negative multiply-subtract ``c - a*b`` (used by Newton-Raphson)."""
        self._check(a, b, c)
        reg = self.stream.new_reg()
        self.stream.emit(
            "fnms", self._float_class(), reg, (a.reg, b.reg, c.reg), self._fma_flops()
        )
        return self._vec(c.data - a.data * b.data, reg)

    # -- comparison / select ---------------------------------------------

    def spu_cmpgt(self, a: Vec, b: Vec) -> Vec:
        """Lane-wise ``a > b``, producing an all-ones/all-zeros mask.

        The mask is represented functionally as 1.0 / 0.0 lanes so that it
        can feed :meth:`spu_sel`.
        """
        self._check(a, b)
        reg = self.stream.new_reg()
        self.stream.emit("fcgt", self._float_class(), reg, (a.reg, b.reg))
        return self._vec((a.data > b.data).astype(self._dtype), reg)

    def spu_or(self, a: Vec, b: Vec) -> Vec:
        """Lane-wise logical OR of 0/1 masks (bitwise ``or`` on hardware,
        a 2-cycle even-pipe byte op; counts no flops)."""
        self._check(a, b)
        reg = self.stream.new_reg()
        self.stream.emit("or", OpClass.BYTE, reg, (a.reg, b.reg))
        data = ((a.data != 0) | (b.data != 0)).astype(self._dtype)
        return self._vec(data, reg)

    def spu_and(self, a: Vec, b: Vec) -> Vec:
        """Lane-wise logical AND of 0/1 masks (bitwise ``and``)."""
        self._check(a, b)
        reg = self.stream.new_reg()
        self.stream.emit("and", OpClass.BYTE, reg, (a.reg, b.reg))
        data = ((a.data != 0) & (b.data != 0)).astype(self._dtype)
        return self._vec(data, reg)

    def ai(self, label: str = "ptr") -> None:
        """Record a fixed-point address increment (pointer bookkeeping).

        Real SPU loops spend even-pipe fixed-point slots on address
        arithmetic; these are the instructions that dual-issue with odd
        pipe loads/stores and give the kernel its ~5 % dual-issue rate.
        """
        reg = self.stream.new_reg("p")
        self.stream.emit("ai", OpClass.FIXED, reg, (label,))

    def spu_sel(self, a: Vec, b: Vec, mask: Vec) -> Vec:
        """Bit select: lane from ``b`` where mask is set, else from ``a``.

        ``selb`` is a byte-class even-pipe instruction with 2-cycle latency;
        it is how branch-free fixups are written on the SPU.
        """
        self._check(a, b, mask)
        reg = self.stream.new_reg()
        self.stream.emit("selb", OpClass.BYTE, reg, (a.reg, b.reg, mask.reg))
        data = np.where(mask.data != 0, b.data, a.data)
        return self._vec(data, reg)

    # -- division (composite) ---------------------------------------------

    def spu_div(self, num: Vec, den: Vec) -> Vec:
        """Divide ``num / den``.

        The SPU has no FP divide.  Real Cell kernels compute a reciprocal
        estimate (``frest`` + ``fi``, single-precision, odd/even pair) and
        refine it with Newton-Raphson steps; double precision needs two
        refinements.  We *record* that sequence so the pipeline cost is
        faithful, but *return* the exact IEEE quotient so the functional
        result matches the NumPy reference solver exactly.
        """
        self._check(num, den)
        est = self.stream.new_reg()
        # reciprocal estimate: frest (odd, shuffle-class timing) + fi (even, SP)
        self.stream.emit("frest", OpClass.SHUFFLE, est, (den.reg,))
        self.stream.emit("fi", OpClass.SP_FLOAT, est, (den.reg, est), self.lanes)
        refinements = 2 if self.double else 1
        cur = est
        for _ in range(refinements):
            t = self.stream.new_reg()
            # t = 1 - den*cur ; cur = cur + cur*t  (fnms + fma)
            self.stream.emit(
                "fnms", self._float_class(), t, (den.reg, cur), self._fma_flops()
            )
            nxt = self.stream.new_reg()
            self.stream.emit(
                "fma", self._float_class(), nxt, (cur, t, cur), self._fma_flops()
            )
            cur = nxt
        out = self.stream.new_reg()
        self.stream.emit(
            "fm", self._float_class(), out, (num.reg, cur), self.lanes
        )
        return self._vec(num.data / den.data, out)

    # -- control ----------------------------------------------------------

    def branch(self, label: str = "loop") -> None:
        """Record a (correctly hinted) loop branch."""
        self.stream.emit(f"br:{label}", OpClass.BRANCH, None)

    def nop(self) -> None:
        """Record an explicit scheduling nop."""
        self.stream.emit("nop", OpClass.NOP, None)


def gather_lanes(ctx: SPUContext, values: Iterable[float]) -> Vec:
    """Pack scalars into one vector via a load (test/example helper)."""
    arr = np.asarray(list(values), dtype=np.float64 if ctx.double else np.float32)
    return ctx.lqd(arr, label="packed")
