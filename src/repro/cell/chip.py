"""Whole-chip composition: one Cell Broadband Engine.

A :class:`CellBE` owns the PPE, the eight SPEs, the shared main-memory
address space, the bus/memory timing models, the atomic domain and a
chip-level clock.  Application layers (:mod:`repro.core`) drive Sweep3D
through this object; the performance model reads its counters back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..metrics.registry import NULL_REGISTRY
from ..trace.bus import NULL_BUS
from .atomic import AtomicDomain
from .clock import CycleClock
from .dma import AddressSpace
from .eib import EIBModel
from .mic import MemoryTimingModel
from .ppe import PPE
from .spe import SPE
from . import constants


@dataclass(frozen=True)
class ChipTraffic:
    """Aggregate DMA traffic of a run, chip-wide."""

    bytes_get: int
    bytes_put: int
    commands: int
    list_elements: int

    @property
    def total_bytes(self) -> int:
        return self.bytes_get + self.bytes_put


class CellBE:
    """A simulated Cell Broadband Engine processor."""

    def __init__(
        self,
        num_spes: int = constants.NUM_SPES,
        ls_capacity: int = constants.LOCAL_STORE_BYTES,
        spe_code_bytes: int = 24 * 1024,
    ) -> None:
        if not 1 <= num_spes <= constants.NUM_SPES:
            raise ConfigurationError(
                f"Cell BE has 1..{constants.NUM_SPES} usable SPEs, got {num_spes}"
            )
        self.memory_timing = MemoryTimingModel()
        self.ppe = PPE()
        self.spes = [
            SPE(i, timing=self.memory_timing, ls_capacity=ls_capacity,
                code_bytes=spe_code_bytes)
            for i in range(num_spes)
        ]
        self.address_space = AddressSpace()
        self.eib = EIBModel()
        self.atomics = AtomicDomain()
        self.clock = CycleClock()
        #: chip-wide trace bus; the null bus until ``install_trace``
        self.trace = NULL_BUS
        #: chip-wide metrics registry; the null registry until
        #: ``install_metrics``
        self.metrics = NULL_REGISTRY
        #: optional allocator override for :meth:`host_alloc`:
        #: ``callable(name, shape, dtype) -> ndarray`` (or None to use
        #: plain ``np.zeros``).  :mod:`repro.parallel` installs a
        #: shared-memory factory here so selected host arrays become
        #: visible to worker processes without copying.
        self.host_array_factory = None

    @property
    def num_spes(self) -> int:
        return len(self.spes)

    def install_trace(self, bus) -> None:
        """Point every instrumented unit of the chip at ``bus``.

        One bus observes the whole machine: the per-SPE MFCs, the shared
        memory-controller and EIB models, mailbox pairs and signal
        registers, plus anything that reads ``chip.trace`` dynamically
        (sync protocols, schedulers, the solver).  Also stamps the
        machine metadata the DMA-hazard sanitizer's capacity checks
        need.  Install :data:`repro.trace.NULL_BUS` to switch tracing
        back off.
        """
        self.trace = bus
        self.memory_timing.trace = bus
        self.eib.trace = bus
        for spe in self.spes:
            spe.trace = bus
            spe.mfc.trace = bus
            spe.mailboxes.trace = bus
            spe.signals.sig1.trace = bus
            spe.signals.sig2.trace = bus
        if bus.enabled:
            bus.machine_info = {
                "num_spes": self.num_spes,
                "ls_capacity": self.spes[0].local_store.capacity,
                "ls_code_bytes": self.spes[0].local_store.reserved_code_bytes,
            }

    def install_metrics(self, registry) -> None:
        """Point every instrumented unit of the chip at ``registry``.

        The metrics twin of :meth:`install_trace`: one registry collects
        the whole machine's counters -- per-SPE MFCs and mailbox pairs,
        the shared memory-timing model, plus everything that reads
        ``chip.metrics`` dynamically (sync protocols, schedulers, the
        streaming layer, the solver).  Install
        :data:`repro.metrics.NULL_REGISTRY` to switch collection back
        off.
        """
        self.metrics = registry
        self.memory_timing.metrics = registry
        for spe in self.spes:
            spe.metrics = registry
            spe.mfc.metrics = registry
            spe.mailboxes.metrics = registry

    def host_alloc(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        bank_offset: int = 0,
        pad_rows_to_line: bool = False,
    ) -> "np.ndarray":
        """Allocate a main-memory array registered in the address space.

        ``pad_rows_to_line`` pads the last dimension so each row starts on
        a 128-byte boundary -- the paper's "array allocation to ensure
        that the rows of the 'multi-dimensional' arrays are 128-byte
        aligned" (Sec. 5).  Returns the *logical* (unpadded) view; the
        padded storage is what the address space registers.
        """
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)

        def zeros(shape_: tuple[int, ...]) -> np.ndarray:
            if self.host_array_factory is not None:
                return self.host_array_factory(name, shape_, dt)
            return np.zeros(shape_, dtype=dt)

        if pad_rows_to_line and len(shape) >= 1:
            row = shape[-1]
            per_line = constants.CACHE_LINE_BYTES // dt.itemsize
            padded_row = -(-row // per_line) * per_line
            storage = zeros(shape[:-1] + (padded_row,))
            self.address_space.allocate(name, storage, bank_offset=bank_offset)
            return storage[..., :row]
        storage = zeros(shape)
        self.address_space.allocate(name, storage, bank_offset=bank_offset)
        return storage

    def traffic(self) -> ChipTraffic:
        """Sum of all SPEs' MFC statistics."""
        return ChipTraffic(
            bytes_get=sum(s.mfc.stats.bytes_get for s in self.spes),
            bytes_put=sum(s.mfc.stats.bytes_put for s in self.spes),
            commands=sum(s.mfc.stats.commands for s in self.spes),
            list_elements=sum(s.mfc.stats.list_elements for s in self.spes),
        )

    def total_spu_flops(self) -> int:
        """Floating-point operations retired across all SPUs."""
        return sum(s.spu.stats.flops for s in self.spes)

    def reset_counters(self) -> None:
        """Zero every statistic (between benchmark configurations)."""
        for spe in self.spes:
            spe.mfc.stats.__init__()
            spe.spu.stats.__init__()
            spe.sync_budget.buckets.clear()
        self.ppe.sync_budget.buckets.clear()
        self.atomics.cycles = 0.0
        self.clock.reset()
