"""Trace-compilation of the functional SPU ISA into batched programs.

Interpreting the SIMDized kernel of :mod:`repro.core.spe_kernel` costs a
Python-level :class:`~repro.cell.isa.Instruction` record plus a 2-lane
NumPy operation *per intrinsic per vector*, which makes the ISA-validated
solve orders of magnitude slower than the fused reference kernel.  But
the kernel's instruction stream is a pure function of its shape
``(it, fixup, precision)`` -- the values flowing through it change per
chunk, the *operations* never do.  This module exploits that the same way
the DMA-program cache of :mod:`repro.core.streaming` exploits recurring
working sets: record the stream once, lower it once into a *compiled
program* of whole-array NumPy operations carrying a leading batch axis,
and replay that program for every line of every :class:`LineBlock` staged
on a jkm diagonal in one call.

Why replay is bit-identical to interpretation: every ISA operation is
elementwise per lane (:class:`~repro.cell.isa.SPUContext` computes
``a.data * b.data + c.data`` and friends on 2- or 4-lane vectors), and
IEEE-754 arithmetic is deterministic per element -- stacking independent
lanes along a batch axis evaluates exactly the same scalar expression per
lane.  The lowering emits divisions as the exact quotient (the documented
``spu_div`` substitution), keeps every ``madd``/``msub`` grouped as the
two-operation ``a*b + c`` the interpreter computes (NumPy has no FMA
contraction), and reproduces the branch-free compare+select fixup as
``where(mask != 0, b, a)`` -- the very expression :meth:`SPUContext.spu_sel`
evaluates.  ``tests/core/test_isa_compile.py`` enforces the equality with
``assert_array_equal``.

Nothing here is machine-visible: the recorded
:class:`~repro.cell.isa.InstructionStream` (what the pipeline model
times) is emitted identically, and compilation only changes how the host
evaluates the functional values.  See docs/PERFORMANCE.md section 4.

Two layers ride on top of the lowering (docs/PERFORMANCE.md section 5):

* an **optimizing program pipeline** (:func:`optimize_program`), run
  once at compile time and cached with the program: constant folding of
  const-only ops (evaluated with the op's exact dtype-typed semantics),
  dead-op elimination backward from the output bindings, and a last-use
  liveness analysis that assigns every surviving intermediate a slot in
  a small reusable buffer pool.  None of the passes reassociate,
  regroup or change a single rounding -- they only skip work and choose
  where results land, so bit-identity with the interpreter is preserved
  (and enforced by the fuzz referees per backend x optimizer mode);

* a pluggable **array backend** (:mod:`repro.cell.backend`):
  ``CompiledProgram.run`` is a thin driver over a backend's op table.
  The numpy reference backend executes the buffer plan with ``out=``
  into preallocated scratch arrays, so a replay allocates only its
  output arrays -- independent of program length; optional torch/cupy
  backends stream the same program through device tensors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from ..errors import PipelineError
from .isa import InstructionStream, OpClass, SPUContext

# Lowered opcode tags (ints for dispatch speed in CompiledProgram.run).
(
    OP_INPUT,
    OP_CONST,
    OP_ADD,
    OP_SUB,
    OP_MUL,
    OP_MADD,
    OP_MSUB,
    OP_NMSUB,
    OP_DIV,
    OP_CMPGT,
    OP_OR,
    OP_AND,
    OP_SEL,
) = range(13)

#: Entry cap of the compiled-program cache (cleared wholesale on
#: overflow, like the DMA-program cache; a miss only costs a re-trace).
PROGRAM_CACHE_MAX_ENTRIES: int = 256


@dataclass(frozen=True)
class TraceVec:
    """A symbolic vector value: a program slot plus the virtual register
    recorded for it (dependency tracking in the instruction stream)."""

    slot: int
    reg: str


@dataclass
class CompileStats:
    """Counters for the ``compile`` blocks of ``solve --json`` and
    ``kernel --json`` (module-global, like the MFC traffic stats)."""

    streams_compiled: int = 0
    cache_hits: int = 0
    batched_calls: int = 0
    batched_blocks: int = 0
    batched_lines: int = 0
    # optimizer pipeline (summed over freshly compiled programs)
    ops_before: int = 0
    ops_after: int = 0
    slots_reused: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "streams_compiled": self.streams_compiled,
            "cache_hits": self.cache_hits,
            "batched_calls": self.batched_calls,
            "batched_blocks": self.batched_blocks,
            "batched_lines": self.batched_lines,
            "ops_before": self.ops_before,
            "ops_after": self.ops_after,
            "slots_reused": self.slots_reused,
        }


STATS = CompileStats()


def stats_delta(before: dict[str, int]) -> dict[str, int]:
    """Counter movement since a :meth:`CompileStats.snapshot`."""
    now = STATS.snapshot()
    return {k: now[k] - before[k] for k in now}


class TraceContext(SPUContext):
    """An :class:`SPUContext` that records the instruction stream while
    lowering each executed intrinsic into a batched-program operation.

    The kernel emission code of :class:`repro.core.spe_kernel.SimdKernel`
    runs against this context unchanged: vectors become :class:`TraceVec`
    slots, loads/stores become named input/output bindings, and every
    arithmetic intrinsic appends both its stream instruction (same
    opcode, operation class, register operands and flop count as the
    interpreting context) and its lowered operation.
    """

    def __init__(self, name: str = "compiled-kernel", double: bool = True) -> None:
        super().__init__(name, double)
        self.ops: list[tuple[int, int, int, int, int]] = []
        self.consts: list[float] = []
        self.inputs: list[Hashable] = []
        self.outputs: list[tuple[Hashable, int]] = []
        self._nslots = 0

    # -- slot / op bookkeeping -------------------------------------------

    def _slot(self) -> int:
        s = self._nslots
        self._nslots += 1
        return s

    def _emit_op(self, kind: int, a: int, b: int = 0, c: int = 0) -> int:
        slot = self._slot()
        self.ops.append((kind, slot, a, b, c))
        return slot

    # -- bindings (what the interpreter's lqd/stqd/splats carry) ---------

    def input_vec(self, key: Hashable, label: str = "mem") -> TraceVec:
        """A batched input bound at run time (the interpreter's ``lqd``)."""
        reg = self.stream.new_reg()
        self.stream.emit("lqd", OpClass.LOAD, reg, (label,))
        slot = self._emit_op(OP_INPUT, len(self.inputs))
        self.inputs.append(key)
        return TraceVec(slot, reg)

    def splats_input(self, key: Hashable) -> TraceVec:
        """A batched per-element scalar input the interpreter would splat
        (e.g. the hoisted cross section, constant per block but not per
        batch)."""
        reg = self.stream.new_reg()
        self.stream.emit("splats", OpClass.SHUFFLE, reg)
        slot = self._emit_op(OP_INPUT, len(self.inputs))
        self.inputs.append(key)
        return TraceVec(slot, reg)

    def output(self, value: TraceVec, key: Hashable, label: str = "mem") -> None:
        """Bind a value as a program output (the interpreter's ``stqd``)."""
        self.stream.emit("stqd", OpClass.STORE, None, (value.reg,))
        self.outputs.append((key, value.slot))

    def lqd(self, source, label: str = "mem"):
        raise PipelineError(
            "TraceContext has no memory to load from; bind a batched "
            "input with input_vec()"
        )

    def stqd(self, value, target, label: str = "mem") -> None:
        raise PipelineError(
            "TraceContext has no memory to store to; bind a batched "
            "output with output()"
        )

    # -- constants --------------------------------------------------------

    def spu_splats(self, scalar: float) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit("splats", OpClass.SHUFFLE, reg)
        slot = self._emit_op(OP_CONST, len(self.consts))
        self.consts.append(float(scalar))
        return TraceVec(slot, reg)

    # -- arithmetic (stream emission mirrors SPUContext exactly) ----------

    def _binary(self, opcode: str, a: TraceVec, b: TraceVec, op, flops: int) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit(opcode, self._float_class(), reg, (a.reg, b.reg), flops)
        return TraceVec(self._emit_op(op, a.slot, b.slot), reg)

    def spu_add(self, a: TraceVec, b: TraceVec) -> TraceVec:
        return self._binary("fa", a, b, OP_ADD, self.lanes)

    def spu_sub(self, a: TraceVec, b: TraceVec) -> TraceVec:
        return self._binary("fs", a, b, OP_SUB, self.lanes)

    def spu_mul(self, a: TraceVec, b: TraceVec) -> TraceVec:
        return self._binary("fm", a, b, OP_MUL, self.lanes)

    def _fused(self, opcode: str, kind: int, a: TraceVec, b: TraceVec, c: TraceVec) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit(
            opcode, self._float_class(), reg, (a.reg, b.reg, c.reg), self._fma_flops()
        )
        return TraceVec(self._emit_op(kind, a.slot, b.slot, c.slot), reg)

    def spu_madd(self, a: TraceVec, b: TraceVec, c: TraceVec) -> TraceVec:
        return self._fused("fma", OP_MADD, a, b, c)

    def spu_msub(self, a: TraceVec, b: TraceVec, c: TraceVec) -> TraceVec:
        return self._fused("fms", OP_MSUB, a, b, c)

    def spu_nmsub(self, a: TraceVec, b: TraceVec, c: TraceVec) -> TraceVec:
        return self._fused("fnms", OP_NMSUB, a, b, c)

    # -- comparison / select ----------------------------------------------

    def spu_cmpgt(self, a: TraceVec, b: TraceVec) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit("fcgt", self._float_class(), reg, (a.reg, b.reg))
        return TraceVec(self._emit_op(OP_CMPGT, a.slot, b.slot), reg)

    def spu_or(self, a: TraceVec, b: TraceVec) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit("or", OpClass.BYTE, reg, (a.reg, b.reg))
        return TraceVec(self._emit_op(OP_OR, a.slot, b.slot), reg)

    def spu_and(self, a: TraceVec, b: TraceVec) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit("and", OpClass.BYTE, reg, (a.reg, b.reg))
        return TraceVec(self._emit_op(OP_AND, a.slot, b.slot), reg)

    def spu_sel(self, a: TraceVec, b: TraceVec, mask: TraceVec) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit("selb", OpClass.BYTE, reg, (a.reg, b.reg, mask.reg))
        return TraceVec(self._emit_op(OP_SEL, a.slot, b.slot, mask.slot), reg)

    # -- division ----------------------------------------------------------

    def spu_div(self, num: TraceVec, den: TraceVec) -> TraceVec:
        # record the frest/fi + Newton-Raphson sequence exactly as the
        # interpreting context does; lower to the exact IEEE quotient,
        # which is what the interpreter computes.
        est = self.stream.new_reg()
        self.stream.emit("frest", OpClass.SHUFFLE, est, (den.reg,))
        self.stream.emit("fi", OpClass.SP_FLOAT, est, (den.reg, est), self.lanes)
        refinements = 2 if self.double else 1
        cur = est
        for _ in range(refinements):
            t = self.stream.new_reg()
            self.stream.emit(
                "fnms", self._float_class(), t, (den.reg, cur), self._fma_flops()
            )
            nxt = self.stream.new_reg()
            self.stream.emit(
                "fma", self._float_class(), nxt, (cur, t, cur), self._fma_flops()
            )
            cur = nxt
        out = self.stream.new_reg()
        self.stream.emit(
            "fm", self._float_class(), out, (num.reg, cur), self.lanes
        )
        return TraceVec(self._emit_op(OP_DIV, num.slot, den.slot), out)

    # ``ai``, ``branch`` and ``nop`` are inherited: they only touch the
    # stream and lower to nothing.

    def finish(self) -> "CompiledProgram":
        """Freeze the lowering into an executable program."""
        return CompiledProgram(
            name=self.stream.name,
            double=self.double,
            ops=tuple(self.ops),
            consts=tuple(self.consts),
            inputs=tuple(self.inputs),
            outputs=tuple(self.outputs),
            nslots=self._nslots,
            stream=self.stream,
        )


# -- the optimizing program pipeline -----------------------------------------

#: Operand count per arithmetic op tag (INPUT/CONST read no slots).
_OPERAND_COUNT: dict[int, int] = {
    OP_ADD: 2, OP_SUB: 2, OP_MUL: 2, OP_DIV: 2,
    OP_CMPGT: 2, OP_OR: 2, OP_AND: 2,
    OP_MADD: 3, OP_MSUB: 3, OP_NMSUB: 3, OP_SEL: 3,
}


def _operands(kind: int, a: int, b: int, c: int) -> tuple:
    n = _OPERAND_COUNT.get(kind, 0)
    if n == 3:
        return (a, b, c)
    if n == 2:
        return (a, b)
    return ()


def _fold_value(kind: int, x, y, z, dtype):
    """Evaluate one op on dtype-typed scalars, mirroring the
    interpreter's expression for that tag exactly (same grouping, same
    single-rounding-per-operation arithmetic, so folding a const-only
    op changes no bit of any downstream value)."""
    if kind == OP_ADD:
        v = x + y
    elif kind == OP_SUB:
        v = x - y
    elif kind == OP_MUL:
        v = x * y
    elif kind == OP_DIV:
        v = x / y
    elif kind == OP_MADD:
        v = x * y + z
    elif kind == OP_MSUB:
        v = x * y - z
    elif kind == OP_NMSUB:
        v = z - x * y
    elif kind == OP_CMPGT:
        v = x > y
    elif kind == OP_OR:
        v = (x != 0) | (y != 0)
    elif kind == OP_AND:
        v = (x != 0) & (y != 0)
    elif kind == OP_SEL:
        v = y if z != 0 else x
    else:  # pragma: no cover - lowering emits only the tags above
        raise PipelineError(f"unknown lowered op tag {kind}")
    return dtype(v)


@dataclass(frozen=True)
class ExecutionPlan:
    """The compile-time product of the optimizer pipeline.

    Slot numbering is the original program's (dead slots simply stay
    unwritten), input/const *binding positions* are unchanged -- a
    caller builds the same input list either way -- and ``dest`` maps
    each surviving op to a scratch-pool buffer index (``-1``: allocate
    fresh; inputs, consts and output-producing ops).
    """

    ops: tuple  #: surviving ops, in original order
    dest: tuple  #: per-op scratch buffer index, aligned with :attr:`ops`
    consts: tuple  #: dtype-typed consts (folding appends to the original)
    num_buffers: int  #: float scratch buffers the pool needs
    num_bool: int  #: boolean mask scratch buffers the pool needs
    stats: dict  #: ``ops_before`` / ``ops_after`` / ``slots_reused`` / ...


def optimize_program(
    ops: tuple, consts: tuple, outputs: tuple, dtype
) -> ExecutionPlan:
    """Run the compile-time pass pipeline over a lowered op list.

    1. **Constant folding** -- an arithmetic op whose operands are all
       constants becomes a constant (evaluated by :func:`_fold_value`
       with the op's exact semantics on dtype-typed scalars).
    2. **Dead-op elimination** -- walk backward from the output slots;
       ops (including input/const materializations) whose results are
       never read are dropped.
    3. **Liveness / buffer plan** -- forward scan recording each slot's
       last use; every surviving arithmetic op that does not produce an
       output binding gets a destination from a LIFO free list of
       scratch buffers (an operand's buffer is released only *after*
       the op that reads it last, so a destination never aliases an
       operand of the same op).  Output-producing ops keep ``dest=-1``:
       their results are freshly allocated and owned by the caller,
       which bounds per-replay allocations at the output count.

    No pass reorders, regroups or re-rounds anything.
    """
    ops_before = len(ops)
    typed_consts = list(dtype(v) for v in consts)

    # pass 1: constant folding
    folded: dict[int, int] = {}  # slot -> index into typed_consts
    stage1: list[tuple] = []
    for op in ops:
        kind, d, a, b, c = op
        if kind == OP_CONST:
            folded[d] = a
            stage1.append(op)
            continue
        if kind == OP_INPUT:
            stage1.append(op)
            continue
        operands = _operands(kind, a, b, c)
        if operands and all(s in folded for s in operands):
            x = typed_consts[folded[a]]
            y = typed_consts[folded[b]]
            z = typed_consts[folded[c]] if len(operands) == 3 else None
            typed_consts.append(_fold_value(kind, x, y, z, dtype))
            folded[d] = len(typed_consts) - 1
            stage1.append((OP_CONST, d, folded[d], 0, 0))
        else:
            stage1.append(op)
    ops_folded = sum(
        1
        for orig, new in zip(ops, stage1)
        if orig[0] not in (OP_CONST, OP_INPUT) and new[0] == OP_CONST
    )

    # pass 2: dead-op elimination, backward from the outputs
    needed = {slot for _, slot in outputs}
    kept: list[tuple] = []
    for op in reversed(stage1):
        kind, d, a, b, c = op
        if d in needed:
            kept.append(op)
            needed.update(_operands(kind, a, b, c))
    kept.reverse()

    # pass 3: last-use liveness -> scratch buffer plan
    output_slots = {slot for _, slot in outputs}
    last_use: dict[int, int] = {}
    for i, (kind, d, a, b, c) in enumerate(kept):
        for s in _operands(kind, a, b, c):
            last_use[s] = i
    dest: list[int] = []
    buffer_of: dict[int, int] = {}
    free: list[int] = []
    num_buffers = 0
    pooled_ops = 0
    need_or = False
    need_mask = False
    for i, (kind, d, a, b, c) in enumerate(kept):
        if kind in (OP_INPUT, OP_CONST) or d in output_slots:
            dest.append(-1)
        else:
            pooled_ops += 1
            if free:
                buf = free.pop()
            else:
                buf = num_buffers
                num_buffers += 1
            dest.append(buf)
            buffer_of[d] = buf
        if kind in (OP_OR, OP_AND):
            need_or = True
        elif kind in (OP_CMPGT, OP_SEL):
            need_mask = True
        # release operand buffers after the op: a destination chosen
        # above can never alias an operand of the same op
        for s in _operands(kind, a, b, c):
            if last_use.get(s) == i and s in buffer_of:
                free.append(buffer_of.pop(s))
    num_bool = 2 if need_or else (1 if need_mask else 0)

    return ExecutionPlan(
        ops=tuple(kept),
        dest=tuple(dest),
        consts=tuple(typed_consts),
        num_buffers=num_buffers,
        num_bool=num_bool,
        stats={
            "ops_before": ops_before,
            "ops_after": len(kept),
            "ops_folded": ops_folded,
            "ops_dead": len(stage1) - len(kept),
            "slots_reused": pooled_ops - num_buffers,
        },
    )


_NUMPY_BACKEND = None


def _default_backend():
    """The reference numpy backend (lazy: backend.py imports this
    module's op tags, so the import must happen after load)."""
    global _NUMPY_BACKEND
    if _NUMPY_BACKEND is None:
        from .backend import numpy_backend

        _NUMPY_BACKEND = numpy_backend()
    return _NUMPY_BACKEND


class _BackendState:
    """Per-(program, backend) warm state: the bound op table, typed
    constants, pre-dispatched step lists and the scratch-buffer pool.

    Kept on the program (which the program cache memoizes), so pool
    workers and the serve daemon carry warm per-backend state across
    solver rebinds exactly like the program cache itself.
    """

    __slots__ = (
        "backend", "dtype", "consts", "plan_consts",
        "steps_raw", "steps_plan",
        "_plan", "_bufs", "_bools", "_views", "_bool_views", "_n",
    )

    def __init__(self, backend, program: "CompiledProgram") -> None:
        self.backend = backend
        self.dtype = program._dtype
        table = backend.op_table(program._dtype)
        self.consts = backend.constants(program.consts, program._dtype)
        plan = program.plan
        self.plan_consts = backend.constants(plan.consts, program._dtype)
        supports_out = backend.supports_out

        def steps(ops, dest):
            out = []
            for i, (kind, d, a, b, c) in enumerate(ops):
                fn = table.get(kind)
                bi = dest[i] if (dest is not None and supports_out) else -1
                out.append((kind, d, a, b, c, fn, bi))
            return tuple(out)

        self.steps_raw = steps(program.ops, None)
        self.steps_plan = steps(plan.ops, plan.dest)
        self._plan = plan
        self._bufs: list = []
        self._bools: list = []
        self._views: list = []
        self._bool_views: list = []
        self._n = -1

    def scratch(self, n: int):
        """The pool views for batch length ``n`` (grown, then cached:
        replays at a repeated batch length allocate nothing)."""
        if n != self._n:
            plan = self._plan
            backend = self.backend
            if not self._bufs or n > len(self._bufs[0]):
                self._bufs = [
                    backend.alloc(n, self.dtype)
                    for _ in range(plan.num_buffers)
                ]
                self._bools = [
                    backend.alloc_bool(n) for _ in range(plan.num_bool)
                ]
            self._views = [b[:n] for b in self._bufs]
            self._bool_views = [b[:n] for b in self._bools]
            self._n = n
        return self._views, self._bool_views


class CompiledProgram:
    """A lowered instruction stream, executable over a leading batch axis.

    ``run(inputs)`` takes one ``(N,)`` array per input binding (in
    :attr:`inputs` order) and returns one ``(N,)`` array per output
    binding (in :attr:`outputs` order); every element of the batch sees
    exactly the scalar dataflow the interpreter evaluates lane by lane.
    The returned arrays are owned by the caller (never views into the
    scratch pool).

    Execution dispatches through an :class:`~repro.cell.backend.ArrayBackend`
    (the numpy reference by default); ``optimize=True`` (default)
    replays the compile-time :class:`ExecutionPlan` -- same bits,
    fewer ops, pooled scratch destinations on ``out=``-capable
    backends.
    """

    def __init__(
        self,
        name: str,
        double: bool,
        ops: tuple,
        consts: tuple,
        inputs: tuple,
        outputs: tuple,
        nslots: int,
        stream: InstructionStream,
    ) -> None:
        self.name = name
        self.double = double
        self.ops = ops
        self.consts = consts
        self.inputs = inputs
        self.outputs = outputs
        self.nslots = nslots
        #: the recorded stream the lowering came from -- the pipeline
        #: model can time it; its signature keys the program cache.
        self.stream = stream
        self._dtype = np.float64 if double else np.float32
        #: the optimizer pipeline runs once here, at compile time, and
        #: is cached with the program.
        self.plan = optimize_program(ops, consts, outputs, self._dtype)
        self._states: dict[str, _BackendState] = {}

    @property
    def instructions(self) -> int:
        return len(self.stream)

    def _arity_error(self, got: int) -> PipelineError:
        expected = len(self.inputs)
        if got < expected:
            missing = ", ".join(repr(k) for k in self.inputs[got:])
            detail = f"missing bindings: {missing}"
        elif expected:
            detail = (
                f"{got - expected} extra value(s) beyond the last "
                f"binding {self.inputs[-1]!r}"
            )
        else:
            detail = "the program has no input bindings"
        return PipelineError(
            f"program {self.name!r} expects {expected} inputs, got {got} "
            f"({detail})"
        )

    def backend_state(self, backend) -> _BackendState:
        state = self._states.get(backend.name)
        if state is None:
            state = self._states[backend.name] = _BackendState(backend, self)
        return state

    def run(
        self,
        inputs: Sequence[np.ndarray],
        backend=None,
        optimize: bool = True,
    ) -> list[np.ndarray]:
        if len(inputs) != len(self.inputs):
            raise self._arity_error(len(inputs))
        if backend is None:
            backend = _default_backend()
        state = self.backend_state(backend)
        if backend.is_host:
            xs = inputs
        else:
            xs = [backend.from_host(x) for x in inputs]
        if optimize:
            steps = state.steps_plan
            consts = state.plan_consts
            if backend.supports_out and state._plan.num_buffers:
                n = next(
                    (x.shape[0] for x in xs if getattr(x, "shape", ())), 0
                )
                bufs, tmps = state.scratch(n)
            else:
                bufs = tmps = None
        else:
            steps = state.steps_raw
            consts = state.consts
            bufs = tmps = None
        vals: list = [None] * self.nslots
        for kind, d, a, b, c, fn, bi in steps:
            if kind == OP_INPUT:
                vals[d] = xs[a]
            elif kind == OP_CONST:
                vals[d] = consts[a]
            elif bi >= 0:
                vals[d] = fn(vals[a], vals[b], vals[c], bufs[bi], tmps)
            else:
                vals[d] = fn(vals[a], vals[b], vals[c], None, None)
        outs = [vals[slot] for _, slot in self.outputs]
        if backend.is_host:
            return outs
        return [backend.to_host(v) for v in outs]


# -- the program cache -------------------------------------------------------

_PROGRAM_CACHE: dict[Hashable, CompiledProgram] = {}


def compiled_program(
    key: Hashable, builder: Callable[[], TraceContext]
) -> CompiledProgram:
    """Memoized compile: trace ``builder()`` once per ``key``.

    ``key`` must determine the emitted stream completely (for the line
    kernel: ``(it, fixup, double)`` -- the only inputs the emission code
    branches on), exactly as the DMA-program cache keys on everything
    ``rows_for_chunk`` reads.  The cached program embeds no run-time
    data, so unlike DMA programs it never needs host invalidation.
    """
    program = _PROGRAM_CACHE.get(key)
    if program is not None:
        STATS.cache_hits += 1
        return program
    program = builder().finish()
    STATS.streams_compiled += 1
    STATS.ops_before += program.plan.stats["ops_before"]
    STATS.ops_after += program.plan.stats["ops_after"]
    STATS.slots_reused += program.plan.stats["slots_reused"]
    if len(_PROGRAM_CACHE) >= PROGRAM_CACHE_MAX_ENTRIES:
        _PROGRAM_CACHE.clear()
    _PROGRAM_CACHE[key] = program
    return program


def cache_size() -> int:
    return len(_PROGRAM_CACHE)


def cache_info() -> dict[str, int]:
    """Occupancy and lifetime traffic of this process's program cache --
    the warm state a persistent pool worker carries across solver
    rebinds."""
    return {
        "entries": len(_PROGRAM_CACHE),
        "capacity": PROGRAM_CACHE_MAX_ENTRIES,
        "compiled": STATS.streams_compiled,
        "hits": STATS.cache_hits,
    }


def clear_cache() -> None:
    """Drop all compiled programs (tests; never needed for correctness)."""
    _PROGRAM_CACHE.clear()
