"""Trace-compilation of the functional SPU ISA into batched programs.

Interpreting the SIMDized kernel of :mod:`repro.core.spe_kernel` costs a
Python-level :class:`~repro.cell.isa.Instruction` record plus a 2-lane
NumPy operation *per intrinsic per vector*, which makes the ISA-validated
solve orders of magnitude slower than the fused reference kernel.  But
the kernel's instruction stream is a pure function of its shape
``(it, fixup, precision)`` -- the values flowing through it change per
chunk, the *operations* never do.  This module exploits that the same way
the DMA-program cache of :mod:`repro.core.streaming` exploits recurring
working sets: record the stream once, lower it once into a *compiled
program* of whole-array NumPy operations carrying a leading batch axis,
and replay that program for every line of every :class:`LineBlock` staged
on a jkm diagonal in one call.

Why replay is bit-identical to interpretation: every ISA operation is
elementwise per lane (:class:`~repro.cell.isa.SPUContext` computes
``a.data * b.data + c.data`` and friends on 2- or 4-lane vectors), and
IEEE-754 arithmetic is deterministic per element -- stacking independent
lanes along a batch axis evaluates exactly the same scalar expression per
lane.  The lowering emits divisions as the exact quotient (the documented
``spu_div`` substitution), keeps every ``madd``/``msub`` grouped as the
two-operation ``a*b + c`` the interpreter computes (NumPy has no FMA
contraction), and reproduces the branch-free compare+select fixup as
``where(mask != 0, b, a)`` -- the very expression :meth:`SPUContext.spu_sel`
evaluates.  ``tests/core/test_isa_compile.py`` enforces the equality with
``assert_array_equal``.

Nothing here is machine-visible: the recorded
:class:`~repro.cell.isa.InstructionStream` (what the pipeline model
times) is emitted identically, and compilation only changes how the host
evaluates the functional values.  See docs/PERFORMANCE.md section 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from ..errors import PipelineError
from .isa import InstructionStream, OpClass, SPUContext

# Lowered opcode tags (ints for dispatch speed in CompiledProgram.run).
(
    OP_INPUT,
    OP_CONST,
    OP_ADD,
    OP_SUB,
    OP_MUL,
    OP_MADD,
    OP_MSUB,
    OP_NMSUB,
    OP_DIV,
    OP_CMPGT,
    OP_OR,
    OP_AND,
    OP_SEL,
) = range(13)

#: Entry cap of the compiled-program cache (cleared wholesale on
#: overflow, like the DMA-program cache; a miss only costs a re-trace).
PROGRAM_CACHE_MAX_ENTRIES: int = 256


@dataclass(frozen=True)
class TraceVec:
    """A symbolic vector value: a program slot plus the virtual register
    recorded for it (dependency tracking in the instruction stream)."""

    slot: int
    reg: str


@dataclass
class CompileStats:
    """Counters for the ``compile`` blocks of ``solve --json`` and
    ``kernel --json`` (module-global, like the MFC traffic stats)."""

    streams_compiled: int = 0
    cache_hits: int = 0
    batched_calls: int = 0
    batched_blocks: int = 0
    batched_lines: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "streams_compiled": self.streams_compiled,
            "cache_hits": self.cache_hits,
            "batched_calls": self.batched_calls,
            "batched_blocks": self.batched_blocks,
            "batched_lines": self.batched_lines,
        }


STATS = CompileStats()


def stats_delta(before: dict[str, int]) -> dict[str, int]:
    """Counter movement since a :meth:`CompileStats.snapshot`."""
    now = STATS.snapshot()
    return {k: now[k] - before[k] for k in now}


class TraceContext(SPUContext):
    """An :class:`SPUContext` that records the instruction stream while
    lowering each executed intrinsic into a batched-program operation.

    The kernel emission code of :class:`repro.core.spe_kernel.SimdKernel`
    runs against this context unchanged: vectors become :class:`TraceVec`
    slots, loads/stores become named input/output bindings, and every
    arithmetic intrinsic appends both its stream instruction (same
    opcode, operation class, register operands and flop count as the
    interpreting context) and its lowered operation.
    """

    def __init__(self, name: str = "compiled-kernel", double: bool = True) -> None:
        super().__init__(name, double)
        self.ops: list[tuple[int, int, int, int, int]] = []
        self.consts: list[float] = []
        self.inputs: list[Hashable] = []
        self.outputs: list[tuple[Hashable, int]] = []
        self._nslots = 0

    # -- slot / op bookkeeping -------------------------------------------

    def _slot(self) -> int:
        s = self._nslots
        self._nslots += 1
        return s

    def _emit_op(self, kind: int, a: int, b: int = 0, c: int = 0) -> int:
        slot = self._slot()
        self.ops.append((kind, slot, a, b, c))
        return slot

    # -- bindings (what the interpreter's lqd/stqd/splats carry) ---------

    def input_vec(self, key: Hashable, label: str = "mem") -> TraceVec:
        """A batched input bound at run time (the interpreter's ``lqd``)."""
        reg = self.stream.new_reg()
        self.stream.emit("lqd", OpClass.LOAD, reg, (label,))
        slot = self._emit_op(OP_INPUT, len(self.inputs))
        self.inputs.append(key)
        return TraceVec(slot, reg)

    def splats_input(self, key: Hashable) -> TraceVec:
        """A batched per-element scalar input the interpreter would splat
        (e.g. the hoisted cross section, constant per block but not per
        batch)."""
        reg = self.stream.new_reg()
        self.stream.emit("splats", OpClass.SHUFFLE, reg)
        slot = self._emit_op(OP_INPUT, len(self.inputs))
        self.inputs.append(key)
        return TraceVec(slot, reg)

    def output(self, value: TraceVec, key: Hashable, label: str = "mem") -> None:
        """Bind a value as a program output (the interpreter's ``stqd``)."""
        self.stream.emit("stqd", OpClass.STORE, None, (value.reg,))
        self.outputs.append((key, value.slot))

    def lqd(self, source, label: str = "mem"):
        raise PipelineError(
            "TraceContext has no memory to load from; bind a batched "
            "input with input_vec()"
        )

    def stqd(self, value, target, label: str = "mem") -> None:
        raise PipelineError(
            "TraceContext has no memory to store to; bind a batched "
            "output with output()"
        )

    # -- constants --------------------------------------------------------

    def spu_splats(self, scalar: float) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit("splats", OpClass.SHUFFLE, reg)
        slot = self._emit_op(OP_CONST, len(self.consts))
        self.consts.append(float(scalar))
        return TraceVec(slot, reg)

    # -- arithmetic (stream emission mirrors SPUContext exactly) ----------

    def _binary(self, opcode: str, a: TraceVec, b: TraceVec, op, flops: int) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit(opcode, self._float_class(), reg, (a.reg, b.reg), flops)
        return TraceVec(self._emit_op(op, a.slot, b.slot), reg)

    def spu_add(self, a: TraceVec, b: TraceVec) -> TraceVec:
        return self._binary("fa", a, b, OP_ADD, self.lanes)

    def spu_sub(self, a: TraceVec, b: TraceVec) -> TraceVec:
        return self._binary("fs", a, b, OP_SUB, self.lanes)

    def spu_mul(self, a: TraceVec, b: TraceVec) -> TraceVec:
        return self._binary("fm", a, b, OP_MUL, self.lanes)

    def _fused(self, opcode: str, kind: int, a: TraceVec, b: TraceVec, c: TraceVec) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit(
            opcode, self._float_class(), reg, (a.reg, b.reg, c.reg), self._fma_flops()
        )
        return TraceVec(self._emit_op(kind, a.slot, b.slot, c.slot), reg)

    def spu_madd(self, a: TraceVec, b: TraceVec, c: TraceVec) -> TraceVec:
        return self._fused("fma", OP_MADD, a, b, c)

    def spu_msub(self, a: TraceVec, b: TraceVec, c: TraceVec) -> TraceVec:
        return self._fused("fms", OP_MSUB, a, b, c)

    def spu_nmsub(self, a: TraceVec, b: TraceVec, c: TraceVec) -> TraceVec:
        return self._fused("fnms", OP_NMSUB, a, b, c)

    # -- comparison / select ----------------------------------------------

    def spu_cmpgt(self, a: TraceVec, b: TraceVec) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit("fcgt", self._float_class(), reg, (a.reg, b.reg))
        return TraceVec(self._emit_op(OP_CMPGT, a.slot, b.slot), reg)

    def spu_or(self, a: TraceVec, b: TraceVec) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit("or", OpClass.BYTE, reg, (a.reg, b.reg))
        return TraceVec(self._emit_op(OP_OR, a.slot, b.slot), reg)

    def spu_and(self, a: TraceVec, b: TraceVec) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit("and", OpClass.BYTE, reg, (a.reg, b.reg))
        return TraceVec(self._emit_op(OP_AND, a.slot, b.slot), reg)

    def spu_sel(self, a: TraceVec, b: TraceVec, mask: TraceVec) -> TraceVec:
        reg = self.stream.new_reg()
        self.stream.emit("selb", OpClass.BYTE, reg, (a.reg, b.reg, mask.reg))
        return TraceVec(self._emit_op(OP_SEL, a.slot, b.slot, mask.slot), reg)

    # -- division ----------------------------------------------------------

    def spu_div(self, num: TraceVec, den: TraceVec) -> TraceVec:
        # record the frest/fi + Newton-Raphson sequence exactly as the
        # interpreting context does; lower to the exact IEEE quotient,
        # which is what the interpreter computes.
        est = self.stream.new_reg()
        self.stream.emit("frest", OpClass.SHUFFLE, est, (den.reg,))
        self.stream.emit("fi", OpClass.SP_FLOAT, est, (den.reg, est), self.lanes)
        refinements = 2 if self.double else 1
        cur = est
        for _ in range(refinements):
            t = self.stream.new_reg()
            self.stream.emit(
                "fnms", self._float_class(), t, (den.reg, cur), self._fma_flops()
            )
            nxt = self.stream.new_reg()
            self.stream.emit(
                "fma", self._float_class(), nxt, (cur, t, cur), self._fma_flops()
            )
            cur = nxt
        out = self.stream.new_reg()
        self.stream.emit(
            "fm", self._float_class(), out, (num.reg, cur), self.lanes
        )
        return TraceVec(self._emit_op(OP_DIV, num.slot, den.slot), out)

    # ``ai``, ``branch`` and ``nop`` are inherited: they only touch the
    # stream and lower to nothing.

    def finish(self) -> "CompiledProgram":
        """Freeze the lowering into an executable program."""
        return CompiledProgram(
            name=self.stream.name,
            double=self.double,
            ops=tuple(self.ops),
            consts=tuple(self.consts),
            inputs=tuple(self.inputs),
            outputs=tuple(self.outputs),
            nslots=self._nslots,
            stream=self.stream,
        )


class CompiledProgram:
    """A lowered instruction stream, executable over a leading batch axis.

    ``run(inputs)`` takes one ``(N,)`` array per input binding (in
    :attr:`inputs` order) and returns one ``(N,)`` array per output
    binding (in :attr:`outputs` order); every element of the batch sees
    exactly the scalar dataflow the interpreter evaluates lane by lane.
    """

    def __init__(
        self,
        name: str,
        double: bool,
        ops: tuple,
        consts: tuple,
        inputs: tuple,
        outputs: tuple,
        nslots: int,
        stream: InstructionStream,
    ) -> None:
        self.name = name
        self.double = double
        self.ops = ops
        self.consts = consts
        self.inputs = inputs
        self.outputs = outputs
        self.nslots = nslots
        #: the recorded stream the lowering came from -- the pipeline
        #: model can time it; its signature keys the program cache.
        self.stream = stream
        self._dtype = np.float64 if double else np.float32
        # dtype-typed scalars so broadcasting never promotes: a float32
        # op with a float32 scalar rounds exactly like the interpreter's
        # splatted constant vector.
        self._typed_consts = tuple(self._dtype(c) for c in consts)

    @property
    def instructions(self) -> int:
        return len(self.stream)

    def run(self, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        if len(inputs) != len(self.inputs):
            raise PipelineError(
                f"program {self.name!r} expects {len(self.inputs)} inputs, "
                f"got {len(inputs)}"
            )
        dtype = self._dtype
        vals: list = [None] * self.nslots
        consts = self._typed_consts
        for kind, d, a, b, c in self.ops:
            if kind == OP_MADD:
                vals[d] = vals[a] * vals[b] + vals[c]
            elif kind == OP_MUL:
                vals[d] = vals[a] * vals[b]
            elif kind == OP_ADD:
                vals[d] = vals[a] + vals[b]
            elif kind == OP_SEL:
                vals[d] = np.where(vals[c] != 0, vals[b], vals[a])
            elif kind == OP_MSUB:
                vals[d] = vals[a] * vals[b] - vals[c]
            elif kind == OP_CMPGT:
                vals[d] = (vals[a] > vals[b]).astype(dtype)
            elif kind == OP_OR:
                vals[d] = ((vals[a] != 0) | (vals[b] != 0)).astype(dtype)
            elif kind == OP_DIV:
                vals[d] = vals[a] / vals[b]
            elif kind == OP_INPUT:
                vals[d] = inputs[a]
            elif kind == OP_CONST:
                vals[d] = consts[a]
            elif kind == OP_SUB:
                vals[d] = vals[a] - vals[b]
            elif kind == OP_NMSUB:
                vals[d] = vals[c] - vals[a] * vals[b]
            elif kind == OP_AND:
                vals[d] = ((vals[a] != 0) & (vals[b] != 0)).astype(dtype)
            else:  # pragma: no cover - lowering emits only the tags above
                raise PipelineError(f"unknown lowered op tag {kind}")
        return [vals[slot] for _, slot in self.outputs]


# -- the program cache -------------------------------------------------------

_PROGRAM_CACHE: dict[Hashable, CompiledProgram] = {}


def compiled_program(
    key: Hashable, builder: Callable[[], TraceContext]
) -> CompiledProgram:
    """Memoized compile: trace ``builder()`` once per ``key``.

    ``key`` must determine the emitted stream completely (for the line
    kernel: ``(it, fixup, double)`` -- the only inputs the emission code
    branches on), exactly as the DMA-program cache keys on everything
    ``rows_for_chunk`` reads.  The cached program embeds no run-time
    data, so unlike DMA programs it never needs host invalidation.
    """
    program = _PROGRAM_CACHE.get(key)
    if program is not None:
        STATS.cache_hits += 1
        return program
    program = builder().finish()
    STATS.streams_compiled += 1
    if len(_PROGRAM_CACHE) >= PROGRAM_CACHE_MAX_ENTRIES:
        _PROGRAM_CACHE.clear()
    _PROGRAM_CACHE[key] = program
    return program


def cache_size() -> int:
    return len(_PROGRAM_CACHE)


def cache_info() -> dict[str, int]:
    """Occupancy of this process's program cache -- the warm state a
    persistent pool worker carries across solver rebinds."""
    return {
        "entries": len(_PROGRAM_CACHE),
        "capacity": PROGRAM_CACHE_MAX_ENTRIES,
    }


def clear_cache() -> None:
    """Drop all compiled programs (tests; never needed for correctness)."""
    _PROGRAM_CACHE.clear()
