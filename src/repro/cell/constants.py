"""Published Cell Broadband Engine architectural parameters.

Every number here is taken from the paper (Sec. 2, "The Cell BE Processor")
or from the public Cell BE Architecture specification it cites.  These are
*inputs* to the simulator, not calibrated fudge factors; the calibrated
overheads live in :mod:`repro.perf.calibration`.
"""

from __future__ import annotations

from ..units import gb_per_s, ghz, kib

#: SPU / PPE clock frequency (Hz).  "The latest Cell processor, running at
#: 3.2 GHz" (Sec. 2).
CLOCK_HZ: float = ghz(3.2)

#: Number of Synergistic Processing Elements on the chip.
NUM_SPES: int = 8

#: Local-store capacity per SPE, bytes ("a 256 KB local scratchpad memory").
LOCAL_STORE_BYTES: int = kib(256)

#: SIMD register width in bytes (128-bit registers).
VECTOR_BYTES: int = 16

#: Number of 128-bit SIMD registers per SPU.
NUM_REGISTERS: int = 128

#: Double-precision lanes per vector (2 x 64-bit).
DP_LANES: int = 2

#: Single-precision lanes per vector (4 x 32-bit).
SP_LANES: int = 4

#: The DP unit is only partially pipelined: one 2-way DP vector operation
#: can issue every 7 SPU cycles ("two double-precision flops every seven
#: SPU clocks" -- with fused multiply-add that is 4 flops / 7 cycles).
DP_ISSUE_INTERVAL_CYCLES: int = 7

#: Flops per DP fused multiply-add vector instruction (2 lanes x mul+add).
DP_FLOPS_PER_FMA: int = 4

#: Flops per SP fused multiply-add vector instruction (4 lanes x mul+add).
SP_FLOPS_PER_FMA: int = 8

#: Theoretical peak, double precision, whole chip (flop/s):
#: 8 SPEs x 4 flops / 7 cycles x 3.2 GHz = 14.63 Gflop/s (Sec. 2).
DP_PEAK_FLOPS: float = NUM_SPES * DP_FLOPS_PER_FMA / DP_ISSUE_INTERVAL_CYCLES * CLOCK_HZ

#: Theoretical peak, single precision, whole chip (flop/s):
#: 8 SPEs x 8 flops/cycle x 3.2 GHz = 204.8 Gflop/s (Sec. 2).
SP_PEAK_FLOPS: float = NUM_SPES * SP_FLOPS_PER_FMA * CLOCK_HZ

#: Main-memory (MIC) peak bandwidth, bytes/s ("25.6 Gigabytes/second").
MIC_BANDWIDTH: float = gb_per_s(25.6)

#: Element Interconnect Bus aggregate peak bandwidth, bytes/s.
EIB_BANDWIDTH: float = gb_per_s(204.8)

#: Number of interleaved main-memory banks (Sec. 5: "the 16 main memory
#: banks").
NUM_MEMORY_BANKS: int = 16

#: Granularity of one memory-bank interleave stride, bytes.  The Cell's
#: XDR memory interleaves on 128-byte naturally aligned blocks.
MEMORY_BANK_STRIDE: int = 128

#: Cache-line / peak-DMA alignment, bytes ("cache-line (128 bytes)
#: alignment ... to improve DMA performance", Sec. 5).
CACHE_LINE_BYTES: int = 128

#: Largest single DMA transfer, bytes.
DMA_MAX_BYTES: int = 16 * 1024

#: Small DMA sizes allowed below the 16-byte granularity rule.
DMA_SMALL_SIZES: tuple[int, ...] = (1, 2, 4, 8)

#: Quantum for large DMA transfers, bytes ("a multiple of 16-bytes").
DMA_QUANTUM: int = 16

#: Maximum number of elements in one DMA list ("up to 2,048 DMA transfers").
DMA_LIST_MAX_ELEMENTS: int = 2048

#: MFC command-queue depth per SPE (16 entries in the CBEA spec).
MFC_QUEUE_DEPTH: int = 16

#: SPU outbound / inbound mailbox depths (CBEA: 1 outbound entry,
#: 1 outbound-interrupt entry, 4 inbound entries).
MAILBOX_INBOUND_DEPTH: int = 4
MAILBOX_OUTBOUND_DEPTH: int = 1

#: Sustained SPE-to-SPE local-store transfer rate: 16 bytes read plus
#: 16 bytes written every SPU cycle per SPE port (Sec. 2 states 16+16 bytes
#: per cycle across the EIB).
LS_PORT_BYTES_PER_CYCLE: int = 16
