"""Human-readable rendering of SPU pipeline schedules.

Turns a :class:`~repro.cell.pipeline.PipelineReport` into the kind of
cycle-by-cycle issue diagram hardware manuals print: one row per cycle,
even-pipe and odd-pipe columns, DP-blocking shaded, dual issues marked.
Used by ``examples/kernel_deep_dive.py`` and handy when tuning a kernel
emission (you can *see* which dependency chain is exposing stalls).
"""

from __future__ import annotations

from .isa import DP_ISSUE_BLOCK, OpClass, Pipe
from .pipeline import PipelineReport


def format_schedule(
    report: PipelineReport,
    first_cycle: int = 0,
    max_cycles: int = 64,
) -> str:
    """Render a window of the schedule as text.

    Columns: cycle number, even-pipe instruction, odd-pipe instruction,
    markers (``*`` dual issue, ``#`` cycle inside a DP issue block).
    """
    by_cycle: dict[int, dict[Pipe, str]] = {}
    dp_blocks: list[tuple[int, int]] = []
    for rec in report.records:
        slot = by_cycle.setdefault(rec.issue_cycle, {})
        slot[rec.instruction.pipe] = rec.instruction.opcode
        if rec.instruction.opclass is OpClass.DP_FLOAT:
            dp_blocks.append(
                (rec.issue_cycle + 1, rec.issue_cycle + DP_ISSUE_BLOCK)
            )

    def in_dp_block(cycle: int) -> bool:
        return any(a <= cycle <= b for a, b in dp_blocks)

    last = min(first_cycle + max_cycles, report.cycles)
    rows = [f"{'cycle':>6s}  {'even pipe':<14s} {'odd pipe':<14s}"]
    for cycle in range(first_cycle, last):
        slot = by_cycle.get(cycle, {})
        even = slot.get(Pipe.EVEN, "")
        odd = slot.get(Pipe.ODD, "")
        marks = ""
        if even and odd:
            marks += " *dual"
        if not slot and in_dp_block(cycle):
            even = "(dp block)"
        rows.append(f"{cycle:6d}  {even:<14s} {odd:<14s}{marks}")
    if last < report.cycles:
        rows.append(f"  ... {report.cycles - last} more cycles")
    rows.append(
        f"total {report.cycles} cycles, {report.instructions} instructions, "
        f"{report.dual_issues} dual issues, {report.flops} flops"
    )
    return "\n".join(rows)


def occupancy_histogram(report: PipelineReport) -> dict[str, int]:
    """Cycle occupancy classes: dual-issue, single-issue, DP-blocked,
    and other stall cycles.  Sums to ``report.cycles``."""
    issued: dict[int, int] = {}
    for rec in report.records:
        issued[rec.issue_cycle] = issued.get(rec.issue_cycle, 0) + 1
    dp_blocked = set()
    for rec in report.records:
        if rec.instruction.opclass is OpClass.DP_FLOAT:
            for c in range(rec.issue_cycle + 1, rec.issue_cycle + 1 + DP_ISSUE_BLOCK):
                dp_blocked.add(c)
    dual = sum(1 for n in issued.values() if n == 2)
    single = sum(1 for n in issued.values() if n == 1)
    blocked = sum(
        1 for c in range(report.cycles) if c not in issued and c in dp_blocked
    )
    stalled = report.cycles - dual - single - blocked
    return {
        "dual_issue": dual,
        "single_issue": single,
        "dp_blocked": blocked,
        "dependency_stall": max(stalled, 0),
    }
