"""SPE mailboxes: short, low-latency, low-bandwidth messaging.

Each SPE has a 4-entry inbound mailbox (PPE -> SPU) and a 1-entry outbound
mailbox (SPU -> PPE) of 32-bit values (Sec. 2: "signals or mailboxes for
short, low-latency (but also low-bandwidth) communication").  The paper's
first synchronization protocol used mailboxes; replacing them with DMA +
local-store poking bought the final 1.48 s -> 1.33 s of Figure 5, because
PPE-side mailbox access goes through slow MMIO.

The model enforces the blocking semantics (a read from an empty mailbox
and a write to a full mailbox *stall* on hardware; here they raise unless
the caller uses the ``try_`` variants) and charges the documented costs to
a :class:`~repro.cell.clock.CycleBudget`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import MailboxError
from ..metrics.registry import NULL_REGISTRY, spe_metric
from ..trace.bus import NULL_BUS, PPE_TRACK, spe_track
from . import constants

#: SPU-side channel access to its own mailbox, cycles.
SPU_MAILBOX_ACCESS_CYCLES: int = 12

#: PPE-side MMIO access to an SPE mailbox, in SPU-equivalent cycles.  MMIO
#: reads across the EIB cost hundreds of nanoseconds; this is the latency
#: the LS-poke protocol of :mod:`repro.core.sync` eliminates.
PPE_MAILBOX_MMIO_CYCLES: int = 1000


@dataclass
class Mailbox:
    """One direction of a mailbox pair, a bounded FIFO of 32-bit values."""

    name: str
    depth: int
    entries: deque[int] = field(default_factory=deque)

    def _check_value(self, value: int) -> None:
        if not 0 <= value < 2**32:
            raise MailboxError(f"{self.name}: mailbox values are 32-bit, got {value}")

    def try_write(self, value: int) -> bool:
        """Write if space is available; returns success."""
        self._check_value(value)
        if len(self.entries) >= self.depth:
            return False
        self.entries.append(value)
        return True

    def write(self, value: int) -> None:
        """Write; raises :class:`MailboxError` if the mailbox is full."""
        if not self.try_write(value):
            raise MailboxError(
                f"{self.name}: write to full mailbox (depth {self.depth}); "
                f"a hardware SPU would stall here"
            )

    def try_read(self) -> int | None:
        """Read the oldest entry, or ``None`` if empty."""
        if not self.entries:
            return None
        return self.entries.popleft()

    def read(self) -> int:
        """Read; raises :class:`MailboxError` if the mailbox is empty."""
        value = self.try_read()
        if value is None:
            raise MailboxError(
                f"{self.name}: read from empty mailbox; "
                f"a hardware reader would stall here"
            )
        return value

    @property
    def count(self) -> int:
        return len(self.entries)


class MailboxPair:
    """The inbound/outbound mailbox set of one SPE."""

    def __init__(self, spe_id: int) -> None:
        self.spe_id = spe_id
        self.inbound = Mailbox(
            f"SPE{spe_id}.inbound", constants.MAILBOX_INBOUND_DEPTH
        )
        self.outbound = Mailbox(
            f"SPE{spe_id}.outbound", constants.MAILBOX_OUTBOUND_DEPTH
        )
        #: trace bus (see ``CellBE.install_trace``).  Mailbox events are
        #: instants (their cycle cost rides in the args); the sync
        #: protocol layer owns the timeline-advancing spans, so the two
        #: layers never double-charge the same cycles.
        self.trace = NULL_BUS
        #: metrics registry (see ``CellBE.install_metrics``).  SPU-side
        #: channel accesses feed the owning SPE's ``mailbox_wait``
        #: bucket; PPE-side MMIO feeds the PPE counters.  The sync
        #: protocols charge only what is *not* already counted here, so
        #: the attribution buckets never double-charge a cycle.
        self.metrics = NULL_REGISTRY

    # Convenience wrappers named for who performs the access, so call
    # sites read like the protocol descriptions in the paper.

    def ppe_send(self, value: int) -> int:
        """PPE writes the SPU's inbound mailbox over MMIO; returns cycles."""
        self.inbound.write(value)
        if self.metrics.enabled:
            self.metrics.add_cycles("ppe.mailbox_mmio_ticks",
                                    PPE_MAILBOX_MMIO_CYCLES)
            self.metrics.count("mailbox.ppe_ops")
        if self.trace.enabled:
            self.trace.instant(
                PPE_TRACK, "MailboxSend", spe=self.spe_id, value=value,
                mailbox="inbound", cycles=PPE_MAILBOX_MMIO_CYCLES,
            )
        return PPE_MAILBOX_MMIO_CYCLES

    def spu_receive(self) -> tuple[int, int]:
        """SPU reads its inbound mailbox; returns (value, cycles)."""
        value = self.inbound.read()
        if self.metrics.enabled:
            self.metrics.add_cycles(
                spe_metric(self.spe_id, "mailbox_wait_ticks"),
                SPU_MAILBOX_ACCESS_CYCLES,
            )
            self.metrics.count("mailbox.spu_ops")
        if self.trace.enabled:
            self.trace.instant(
                spe_track(self.spe_id), "MailboxRecv", value=value,
                mailbox="inbound", cycles=SPU_MAILBOX_ACCESS_CYCLES,
            )
        return value, SPU_MAILBOX_ACCESS_CYCLES

    def spu_send(self, value: int) -> int:
        """SPU writes its outbound mailbox; returns cycles."""
        self.outbound.write(value)
        if self.metrics.enabled:
            self.metrics.add_cycles(
                spe_metric(self.spe_id, "mailbox_wait_ticks"),
                SPU_MAILBOX_ACCESS_CYCLES,
            )
            self.metrics.count("mailbox.spu_ops")
        if self.trace.enabled:
            self.trace.instant(
                spe_track(self.spe_id), "MailboxSend", value=value,
                mailbox="outbound", cycles=SPU_MAILBOX_ACCESS_CYCLES,
            )
        return SPU_MAILBOX_ACCESS_CYCLES

    def ppe_receive(self) -> tuple[int, int]:
        """PPE reads the SPU's outbound mailbox over MMIO; returns
        (value, cycles)."""
        value = self.outbound.read()
        if self.metrics.enabled:
            self.metrics.add_cycles("ppe.mailbox_mmio_ticks",
                                    PPE_MAILBOX_MMIO_CYCLES)
            self.metrics.count("mailbox.ppe_ops")
        if self.trace.enabled:
            self.trace.instant(
                PPE_TRACK, "MailboxRecv", spe=self.spe_id, value=value,
                mailbox="outbound", cycles=PPE_MAILBOX_MMIO_CYCLES,
            )
        return value, PPE_MAILBOX_MMIO_CYCLES
