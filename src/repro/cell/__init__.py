"""Cell Broadband Engine simulator substrate.

Functional + timing models of the hardware the paper tunes for: the SPU
dual-issue pipeline and SIMD ISA, 256 KB local stores, MFC DMA queues and
DMA lists, the EIB, the 16-bank memory controller, mailboxes, signals and
the atomic unit.  See DESIGN.md Sec. 2.1 for the module map.
"""

from . import constants
from .atomic import AtomicDomain
from .chip import CellBE, ChipTraffic
from .clock import CycleBudget, CycleClock
from .dma import (
    AddressSpace,
    DMACommand,
    DMAKind,
    DMAListCommand,
    HostArray,
    LSToLSCommand,
    bank_of,
    is_peak_rate,
)
from .eib import EIBModel
from .backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    backend_status,
    numpy_backend,
    resolve_backend,
)
from .isa import Instruction, InstructionStream, OpClass, Pipe, SPUContext, Vec
from .local_store import LocalStore, LSBuffer
from .mailbox import Mailbox, MailboxPair
from .mfc import MFC
from .mic import MemoryTimingModel, TransferCost, bank_spread_factor
from .isa_compile import (
    CompiledProgram,
    ExecutionPlan,
    TraceContext,
    compiled_program,
    optimize_program,
)
from .pipeline import PipelineReport, simulate, simulate_cached
from .ppe import PPE
from .registers import PressureReport, analyze_pressure, kernel_code_bytes, kernel_pressure
from .schedule_view import format_schedule, occupancy_histogram
from .signals import SignalRegister, SignalUnit
from .spe import SPE, SPU

__all__ = [
    "AddressSpace",
    "ArrayBackend",
    "AtomicDomain",
    "CellBE",
    "ChipTraffic",
    "CompiledProgram",
    "ExecutionPlan",
    "NumpyBackend",
    "CycleBudget",
    "CycleClock",
    "DMACommand",
    "DMAKind",
    "DMAListCommand",
    "EIBModel",
    "HostArray",
    "Instruction",
    "InstructionStream",
    "LSBuffer",
    "LSToLSCommand",
    "LocalStore",
    "MFC",
    "Mailbox",
    "MailboxPair",
    "MemoryTimingModel",
    "OpClass",
    "PPE",
    "Pipe",
    "PipelineReport",
    "PressureReport",
    "analyze_pressure",
    "available_backends",
    "backend_status",
    "format_schedule",
    "kernel_code_bytes",
    "kernel_pressure",
    "occupancy_histogram",
    "SignalRegister",
    "SignalUnit",
    "SPE",
    "SPU",
    "SPUContext",
    "TraceContext",
    "TransferCost",
    "Vec",
    "bank_of",
    "bank_spread_factor",
    "compiled_program",
    "constants",
    "is_peak_rate",
    "numpy_backend",
    "optimize_program",
    "resolve_backend",
    "simulate",
    "simulate_cached",
]
