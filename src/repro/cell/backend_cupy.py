"""Optional CuPy array backend for compiled ISA programs.

Lazy like :mod:`repro.cell.backend_torch`: cupy is imported only when
the backend is explicitly selected, and :func:`cupy_status` reports
availability (library *and* a usable CUDA device) without raising.

CuPy's elementwise kernels follow the same generate-once / memoize /
replay idiom as the pycuda exemplar named in ROADMAP -- the op table
closures compile their CUDA kernels on first use and replay them for
every batch.  Grouping mirrors the numpy reference (two-operation madd,
``c - a*b`` nmsub, compare/logical masks cast to the program dtype,
``where``-select); device rounding is refereed against the documented
tolerance in docs/PERFORMANCE.md (``exact = False``).  ``supports_out``
is True: cupy ufuncs accept ``out=`` with numpy semantics, so the
buffer-reuse plan applies and replays keep device allocations O(1).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from .backend import ArrayBackend
from .isa_compile import (
    OP_ADD,
    OP_AND,
    OP_CMPGT,
    OP_DIV,
    OP_MADD,
    OP_MSUB,
    OP_MUL,
    OP_NMSUB,
    OP_OR,
    OP_SEL,
    OP_SUB,
)

#: Relative tolerance the cupy flux referee asserts against the numpy
#: reference (see docs/PERFORMANCE.md).
CUPY_RTOL: float = 1e-12


def _import_cupy():
    try:
        import cupy  # noqa: PLC0415

        # a usable device, not just the library
        cupy.cuda.runtime.getDeviceCount()
        return cupy
    except Exception:
        return None


def cupy_available() -> bool:
    return _import_cupy() is not None


def cupy_status() -> dict:
    """Availability summary for :func:`repro.cell.backend.backend_status`."""
    cupy = _import_cupy()
    if cupy is None:
        return {
            "available": False,
            "exact": False,
            "supports_out": True,
            "detail": "cupy is not installed or no CUDA device is visible",
        }
    return {
        "available": True,
        "exact": False,
        "supports_out": True,
        "detail": f"cupy {cupy.__version__}",
    }


def create_cupy_backend() -> "CupyBackend":
    cupy = _import_cupy()
    if cupy is None:
        raise ConfigurationError(
            "array backend 'cupy' selected but cupy (or a CUDA device) "
            "is unavailable; use --backend numpy"
        )
    return CupyBackend(cupy)


class CupyBackend(ArrayBackend):
    name = "cupy"
    exact = False
    supports_out = True
    is_host = False

    def __init__(self, cupy) -> None:
        self.cupy = cupy

    def from_host(self, array: np.ndarray):
        return self.cupy.asarray(array)

    def to_host(self, array) -> np.ndarray:
        return self.cupy.asnumpy(array)

    def alloc(self, n: int, dtype):
        return self.cupy.empty(n, dtype=dtype)

    def alloc_bool(self, n: int):
        return self.cupy.empty(n, dtype=bool)

    def empty_like(self, array):
        return self.cupy.empty_like(array)

    def constants(self, values: Sequence, dtype) -> tuple:
        # 0-dim device arrays so every op runs on-device without
        # per-replay host->device scalar uploads.
        return tuple(self.cupy.asarray(v, dtype=dtype) for v in values)

    def op_table(self, dtype) -> dict[int, Callable]:
        cp = self.cupy

        def add(a, b, c, out, tmp):
            return cp.add(a, b, out=out) if out is not None else a + b

        def sub(a, b, c, out, tmp):
            return cp.subtract(a, b, out=out) if out is not None else a - b

        def mul(a, b, c, out, tmp):
            return cp.multiply(a, b, out=out) if out is not None else a * b

        def div(a, b, c, out, tmp):
            return cp.divide(a, b, out=out) if out is not None else a / b

        def madd(a, b, c, out, tmp):
            if out is None:
                return a * b + c
            cp.multiply(a, b, out=out)
            return cp.add(out, c, out=out)

        def msub(a, b, c, out, tmp):
            if out is None:
                return a * b - c
            cp.multiply(a, b, out=out)
            return cp.subtract(out, c, out=out)

        def nmsub(a, b, c, out, tmp):
            if out is None:
                return c - a * b
            cp.multiply(a, b, out=out)
            return cp.subtract(c, out, out=out)

        def cmpgt(a, b, c, out, tmp):
            if out is None:
                return (a > b).astype(dtype)
            cp.greater(a, b, out=tmp[0])
            out[...] = tmp[0]
            return out

        def or_(a, b, c, out, tmp):
            if out is None:
                return ((a != 0) | (b != 0)).astype(dtype)
            cp.not_equal(a, 0, out=tmp[0])
            cp.not_equal(b, 0, out=tmp[1])
            cp.logical_or(tmp[0], tmp[1], out=tmp[0])
            out[...] = tmp[0]
            return out

        def and_(a, b, c, out, tmp):
            if out is None:
                return ((a != 0) & (b != 0)).astype(dtype)
            cp.not_equal(a, 0, out=tmp[0])
            cp.not_equal(b, 0, out=tmp[1])
            cp.logical_and(tmp[0], tmp[1], out=tmp[0])
            out[...] = tmp[0]
            return out

        def sel(a, b, c, out, tmp):
            if out is None:
                return cp.where(c != 0, b, a)
            cp.not_equal(c, 0, out=tmp[0])
            cp.copyto(out, a)
            cp.copyto(out, b, where=tmp[0])
            return out

        return {
            OP_ADD: add,
            OP_SUB: sub,
            OP_MUL: mul,
            OP_DIV: div,
            OP_MADD: madd,
            OP_MSUB: msub,
            OP_NMSUB: nmsub,
            OP_CMPGT: cmpgt,
            OP_OR: or_,
            OP_AND: and_,
            OP_SEL: sel,
        }
