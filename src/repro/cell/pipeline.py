"""In-order dual-issue SPU pipeline timing model.

The SPU (Sec. 2) is an in-order processor with two pipelines: floating
point and fixed point issue on the *even* pipe; loads/stores, shuffles,
branches and channel instructions issue on the *odd* pipe.  Up to two
instructions -- one per pipe -- can issue per cycle, in program order.

The model replays an :class:`~repro.cell.isa.InstructionStream` and
determines, for each instruction, the earliest cycle at which it can issue
given:

* **program order** -- instruction *i* never issues before instruction
  *i-1*; it may issue in the same cycle only if the two use different
  pipes (that is what the paper counts as a "dual issue");
* **pipe occupancy** -- one instruction per pipe per cycle;
* **operand readiness** -- read-after-write dependencies honour the
  latency table in :data:`~repro.cell.isa.OP_TABLE`;
* **the double-precision issue restriction** -- a DP instruction blocks
  *all* issue for the following ``DP_ISSUE_BLOCK`` (= 6) cycles, which is
  the architectural reason the paper's kernel tops out at 4 flops every
  7 cycles and the dual-issue rate stays near 5 %.

The paper's Sec. 5.1 numbers (590 / 1690 cycles, 24 / 85 dual issues,
64 % of DP peak, ~200 cycles and 25 % of peak in single precision) are
reproduced by running the actual kernel streams emitted by
:mod:`repro.core.spe_kernel` through :func:`simulate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PipelineError
from . import constants
from .isa import DP_ISSUE_BLOCK, Instruction, InstructionStream, OpClass, Pipe


@dataclass(frozen=True)
class IssueRecord:
    """Where one instruction landed in the schedule."""

    instruction: Instruction
    issue_cycle: int
    complete_cycle: int
    dual_issued: bool


@dataclass
class PipelineReport:
    """Summary statistics of one simulated stream.

    ``cycles`` counts from the first issue to the last *issue* plus one
    issue slot, matching how static kernel timings are quoted for in-order
    machines (the drain of the last instruction overlaps the next kernel
    invocation in steady state).
    """

    name: str
    cycles: int
    instructions: int
    flops: int
    dual_issues: int
    dp_instructions: int
    records: list[IssueRecord] = field(repr=False, default_factory=list)

    @property
    def dual_issue_rate(self) -> float:
        """Fraction of occupied cycles that issued two instructions."""
        if self.cycles == 0:
            return 0.0
        return self.dual_issues / self.cycles

    @property
    def flops_per_cycle(self) -> float:
        """Achieved floating-point operations per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.flops / self.cycles

    def efficiency(self, double: bool = True) -> float:
        """Achieved fraction of the SPU's theoretical FP peak.

        For double precision the peak is 4 flops every 7 cycles (Sec. 5.1:
        "the theoretical peak performance is 4 Flops every 7 cycles");
        for single precision it is 8 flops per cycle.
        """
        if double:
            peak = constants.DP_FLOPS_PER_FMA / constants.DP_ISSUE_INTERVAL_CYCLES
        else:
            peak = float(constants.SP_FLOPS_PER_FMA)
        return self.flops_per_cycle / peak

    def gflops(self, clock_hz: float = constants.CLOCK_HZ) -> float:
        """Achieved Gflop/s for one SPU at ``clock_hz``."""
        return self.flops_per_cycle * clock_hz / 1e9


def simulate(stream: InstructionStream) -> PipelineReport:
    """Schedule ``stream`` on the dual-issue in-order pipeline model.

    Returns a :class:`PipelineReport`; raises :class:`PipelineError` on an
    empty stream (a kernel that emitted nothing is a bug, not a zero-cost
    kernel).
    """
    if len(stream) == 0:
        raise PipelineError(f"instruction stream {stream.name!r} is empty")

    ready_at: dict[str, int] = {}
    pipe_free = {Pipe.EVEN: 0, Pipe.ODD: 0}
    #: no instruction may issue before this cycle (DP blocking).
    global_block = 0
    prev_issue = -1
    prev_pipe: Pipe | None = None
    records: list[IssueRecord] = []
    dual_issues = 0

    for instr in stream:
        earliest = max(global_block, pipe_free[instr.pipe], prev_issue)
        for src in instr.srcs:
            earliest = max(earliest, ready_at.get(src, 0))
        # In-order rule: same cycle as the previous instruction is allowed
        # only when the pipes differ (a dual issue); otherwise wait a cycle.
        if earliest == prev_issue and prev_pipe is not None:
            if instr.pipe is prev_pipe:
                earliest += 1
        issue = earliest
        dual = issue == prev_issue
        if dual:
            dual_issues += 1
        complete = issue + instr.latency
        if instr.dest is not None:
            ready_at[instr.dest] = complete
        pipe_free[instr.pipe] = issue + 1
        if instr.opclass is OpClass.DP_FLOAT:
            # DP stalls all issue for the next DP_ISSUE_BLOCK cycles.
            global_block = issue + 1 + DP_ISSUE_BLOCK
        records.append(IssueRecord(instr, issue, complete, dual))
        prev_issue = issue
        prev_pipe = instr.pipe

    cycles = records[-1].issue_cycle + 1
    return PipelineReport(
        name=stream.name,
        cycles=cycles,
        instructions=len(stream),
        flops=stream.flops,
        dual_issues=dual_issues,
        dp_instructions=stream.count(OpClass.DP_FLOAT),
        records=records,
    )


#: PipelineReport memo, keyed by stream signature.  Kernel cycle reports
#: re-emit byte-identical streams for every (nm, fixup, precision,
#: threads) combination they are asked about -- across CLI calls, ladder
#: rungs, perf-model queries and tests -- and scheduling them is a pure
#: function of the instruction sequence, so re-simulating is pure waste.
_REPORT_CACHE: dict[tuple, PipelineReport] = {}

#: Entry cap (cleared wholesale on overflow; a miss only re-simulates).
REPORT_CACHE_MAX_ENTRIES: int = 128


@dataclass
class SimulateStats:
    """Hit/miss counters for the ``compile`` block of the CLI reports."""

    simulated: int = 0
    cache_hits: int = 0

    def snapshot(self) -> dict[str, int]:
        return {"simulated": self.simulated, "cache_hits": self.cache_hits}


SIMULATE_STATS = SimulateStats()


def simulate_cached(stream: InstructionStream) -> PipelineReport:
    """Memoized :func:`simulate`, keyed by the stream's signature.

    The returned report is shared between callers with equal streams;
    treat it as read-only (every consumer already does: reports are
    summary statistics).  Bounded like the DMA-program cache.
    """
    key = stream.signature()
    report = _REPORT_CACHE.get(key)
    if report is not None:
        SIMULATE_STATS.cache_hits += 1
        return report
    report = simulate(stream)
    SIMULATE_STATS.simulated += 1
    if len(_REPORT_CACHE) >= REPORT_CACHE_MAX_ENTRIES:
        _REPORT_CACHE.clear()
    _REPORT_CACHE[key] = report
    return report


def drain_cycles(report: PipelineReport) -> int:
    """Cycles until the last result is architecturally visible.

    ``report.cycles`` measures steady-state issue occupancy; this helper
    returns the full latency including the drain of the final instruction,
    which matters for very short streams.
    """
    if not report.records:
        return 0
    return max(r.complete_cycle for r in report.records)
