"""The Power Processing Element: control processor of the Cell BE.

The PPE runs the operating system, the MPI process-level code, and -- in
the paper's design -- the task-distribution loop that farms I-line chunks
to the SPEs (Sec. 6 identifies this centralized distribution as a
bottleneck, motivating the Figure 10 distributed-scheduler projection).

For compute, the PPE is a conventional dual-issue in-order 2-way SMT
PowerPC core; the paper's baseline numbers (22.3 s under GCC, 19.9 s under
XLC for the 50-cubed problem) are PPE-only runs.  Those appear in the
performance model as grind-time constants in
:mod:`repro.perf.processors`; this class models the PPE's *interaction*
costs: MMIO accesses to SPE resources and direct local-store pokes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CellError
from .clock import CycleBudget
from .spe import SPE

#: PPE MMIO store into an SPE's local store ("direct local store memory
#: poking from the PPE", the Figure-5 final synchronization protocol).
#: A posted store is far cheaper than a mailbox MMIO *read*.
PPE_LS_POKE_CYCLES: int = 120

#: PPE MMIO load from an SPE's local store (polling a completion word).
PPE_LS_PEEK_CYCLES: int = 320


@dataclass
class PPE:
    """The control processor, with its synchronization cost ledger."""

    sync_budget: CycleBudget = field(default_factory=CycleBudget)

    def poke_ls(self, spe: SPE, offset: int, values: bytes) -> int:
        """Write ``values`` directly into an SPE local store over MMIO.

        "the Cell BE allows memory-mapped access to nearly all resources
        on the SPEs, including the entire local store" (Sec. 2).
        Returns the modelled cycle cost.
        """
        memory = spe.local_store._memory
        if offset < 0 or offset + len(values) > memory.size:
            raise CellError(
                f"LS poke of {len(values)} B at {offset:#x} outside the "
                f"{memory.size}-byte local store of SPE {spe.spe_id}"
            )
        import numpy as np

        memory[offset : offset + len(values)] = np.frombuffer(values, dtype=np.uint8)
        self.sync_budget.charge("ls_poke", PPE_LS_POKE_CYCLES)
        return PPE_LS_POKE_CYCLES

    def peek_ls(self, spe: SPE, offset: int, size: int) -> tuple[bytes, int]:
        """Read ``size`` bytes from an SPE local store over MMIO."""
        memory = spe.local_store._memory
        if offset < 0 or offset + size > memory.size:
            raise CellError(
                f"LS peek of {size} B at {offset:#x} outside the "
                f"{memory.size}-byte local store of SPE {spe.spe_id}"
            )
        self.sync_budget.charge("ls_peek", PPE_LS_PEEK_CYCLES)
        return bytes(memory[offset : offset + size].tobytes()), PPE_LS_PEEK_CYCLES
