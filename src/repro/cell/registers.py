"""Register-pressure analysis of recorded instruction streams.

Sec. 2: "Each SPU has 128 128-bit SIMD registers.  The large number of
registers facilitates very efficient instruction scheduling and enables
important optimization techniques such as loop unrolling."  The four
logical vectorization threads of the paper's kernel are exactly such an
unrolling -- and they are only possible because four interleaved copies
of the kernel's live state still fit the register file.

This module computes live ranges over the virtual registers of an
:class:`~repro.cell.isa.InstructionStream` and reports the maximum
simultaneous pressure, letting tests assert that the emitted kernels
would actually colour onto 128 architectural registers (with room for
the ABI's reserved ones).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PipelineError
from . import constants
from .isa import InstructionStream

#: registers the SPU ABI reserves (link register, stack pointer,
#: environment, plus the first argument slots the runtime stub holds).
ABI_RESERVED_REGISTERS: int = 8


@dataclass(frozen=True)
class PressureReport:
    """Register-pressure summary of one stream."""

    max_live: int
    at_instruction: int        # index where the peak occurs
    total_values: int          # distinct virtual registers defined
    spills_needed: int         # live values beyond the register file

    @property
    def fits(self) -> bool:
        return self.spills_needed == 0


def analyze_pressure(
    stream: InstructionStream,
    register_file: int = constants.NUM_REGISTERS - ABI_RESERVED_REGISTERS,
) -> PressureReport:
    """Live-range analysis over a straight-line stream.

    A virtual register is live from its defining instruction to its last
    use.  Source names that were never defined in the stream (values
    hoisted by a prologue outside the analysed window) are treated as
    live from instruction 0.
    """
    if len(stream) == 0:
        raise PipelineError("cannot analyze an empty stream")
    first_def: dict[str, int] = {}
    last_use: dict[str, int] = {}
    for i, instr in enumerate(stream):
        if instr.dest is not None and instr.dest not in first_def:
            first_def[instr.dest] = i
        for src in instr.srcs:
            last_use[src] = i
            if src not in first_def:
                first_def[src] = 0  # defined before the window
    # values defined but never used still occupy a register at their
    # definition point.
    for reg, d in first_def.items():
        last_use.setdefault(reg, d)

    events: list[tuple[int, int]] = []  # (position, +1/-1)
    for reg, start in first_def.items():
        events.append((start, +1))
        events.append((last_use[reg] + 1, -1))
    events.sort()
    live = 0
    max_live = 0
    at = 0
    for pos, delta in events:
        live += delta
        if live > max_live:
            max_live = live
            at = pos
    return PressureReport(
        max_live=max_live,
        at_instruction=at,
        total_values=len(first_def),
        spills_needed=max(0, max_live - register_file),
    )


def kernel_pressure(nm: int = 4, fixup: bool = False, double: bool = True,
                    logical_threads: int = 4) -> PressureReport:
    """Pressure of one steady-state production-kernel iteration."""
    from ..core.spe_kernel import kernel_cycle_report

    report = kernel_cycle_report(
        nm=nm, fixup=fixup, double=double, logical_threads=logical_threads
    )
    stream = InstructionStream("pressure")
    stream.instructions = [r.instruction for r in report.records]
    return analyze_pressure(stream)


#: every SPU instruction is 4 bytes.
INSTRUCTION_BYTES: int = 4

#: runtime stub around the kernel: scheduler loop, DMA sequencing,
#: sync protocol handlers (representative size for a Sweep3D-class
#: SPE program).
RUNTIME_STUB_BYTES: int = 12 * 1024


def kernel_code_bytes(nm: int = 4, double: bool = True,
                      logical_threads: int = 4) -> int:
    """Estimated SPU program size for the production kernel.

    Both kernel variants (plain and fixup) are resident -- the
    ``do_fixups`` flag of Figure 2 selects between them at run time --
    plus the runtime stub.  The result must fit the local-store code
    reservation of :class:`~repro.cell.spe.SPE` (tested), because code
    and data share the 256 KB.
    """
    from ..core.spe_kernel import kernel_cycle_report

    total = 0
    for fixup in (False, True):
        report = kernel_cycle_report(
            nm=nm, fixup=fixup, double=double, logical_threads=logical_threads
        )
        total += report.instructions * INSTRUCTION_BYTES
    return total + RUNTIME_STUB_BYTES
