"""Software-managed 256 KB SPE local store.

Each SPE's local store holds *both* code and data and has no hardware
caching or prefetch: "No hardware data load prediction structures exist for
LS management, and each LS must be managed by software" (Sec. 2).  The
paper's data-streaming design exists because working sets must be staged
into this small memory explicitly by DMA.

This module models the LS as a real byte buffer with an explicit
allocator.  The allocator enforces the two facts the paper's porting steps
revolve around:

* capacity -- an allocation that does not fit raises
  :class:`~repro.errors.LocalStoreError` (this is how the tests prove the
  double-buffered working set of :mod:`repro.core.streaming` actually fits);
* alignment -- DMA targets must be 16-byte aligned, and 128-byte alignment
  is required for peak bandwidth (porting step 3 in Sec. 5).

Buffers hand out NumPy views into the backing storage so the functional
kernel reads and writes the very bytes a DMA engine would move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import LocalStoreError
from ..units import align_up, is_aligned
from . import constants


@dataclass
class LSBuffer:
    """A live allocation inside a local store."""

    offset: int
    nbytes: int
    label: str
    _memory: np.ndarray = field(repr=False)
    _freed: bool = field(default=False, repr=False)

    def _view(self) -> np.ndarray:
        if self._freed:
            raise LocalStoreError(f"use of freed LS buffer {self.label!r}")
        return self._memory[self.offset : self.offset + self.nbytes]

    def as_bytes(self) -> np.ndarray:
        """Raw ``uint8`` view of the allocation."""
        return self._view()

    def as_array(self, dtype: np.dtype | type, shape: tuple[int, ...] | None = None) -> np.ndarray:
        """Typed view of the allocation.

        The requested dtype/shape must tile the allocation exactly when a
        shape is given, or divide it exactly when only a dtype is given.
        """
        dt = np.dtype(dtype)
        view = self._view()
        if self.nbytes % dt.itemsize:
            raise LocalStoreError(
                f"buffer {self.label!r} of {self.nbytes} B is not a whole number "
                f"of {dt} items"
            )
        arr = view.view(dt)
        if shape is not None:
            expected = int(np.prod(shape)) * dt.itemsize
            if expected > self.nbytes:
                raise LocalStoreError(
                    f"shape {shape} of {dt} needs {expected} B but buffer "
                    f"{self.label!r} holds {self.nbytes} B"
                )
            arr = arr[: int(np.prod(shape))].reshape(shape)
        return arr

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class LocalStore:
    """First-fit allocator over a real byte buffer.

    Free regions are kept sorted and coalesced so that the streaming layer
    can allocate/free per-chunk buffers indefinitely without fragmenting
    the modelled 256 KB.
    """

    def __init__(
        self,
        capacity: int = constants.LOCAL_STORE_BYTES,
        reserved_code_bytes: int = 0,
    ) -> None:
        """``reserved_code_bytes`` models the SPU program image, which
        shares the LS with data (Sec. 2: "to store both the instructions
        and data of an SPU program")."""
        if capacity <= 0:
            raise LocalStoreError(f"capacity must be positive, got {capacity}")
        if not 0 <= reserved_code_bytes <= capacity:
            raise LocalStoreError(
                f"reserved code size {reserved_code_bytes} outside [0, {capacity}]"
            )
        self.capacity = capacity
        self.reserved_code_bytes = reserved_code_bytes
        self._memory = np.zeros(capacity, dtype=np.uint8)
        #: sorted list of (offset, nbytes) free extents
        self._free: list[tuple[int, int]] = [
            (reserved_code_bytes, capacity - reserved_code_bytes)
        ]
        self._live: dict[int, LSBuffer] = {}

    # -- accounting ------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        """Total free capacity (may be fragmented)."""
        return sum(n for _, n in self._free)

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated to live buffers (excludes code)."""
        return sum(b.nbytes for b in self._live.values())

    @property
    def largest_free_extent(self) -> int:
        """Largest single allocation that could currently succeed."""
        return max((n for _, n in self._free), default=0)

    def live_buffers(self) -> list[LSBuffer]:
        """The live allocations, ordered by offset."""
        return sorted(self._live.values(), key=lambda b: b.offset)

    # -- allocation ------------------------------------------------------

    def alloc(
        self,
        nbytes: int,
        alignment: int = constants.DMA_QUANTUM,
        label: str = "buffer",
    ) -> LSBuffer:
        """Allocate ``nbytes`` at the given alignment (first fit).

        Raises :class:`LocalStoreError` when no free extent can satisfy the
        request -- the error message reports occupancy, because "working
        set does not fit in the local store" is the failure mode the
        paper's streaming design is built around.
        """
        if nbytes <= 0:
            raise LocalStoreError(f"allocation size must be positive, got {nbytes}")
        for idx, (off, length) in enumerate(self._free):
            start = align_up(off, alignment)
            pad = start - off
            if pad + nbytes <= length:
                # carve [start, start+nbytes) out of this extent
                del self._free[idx]
                if pad:
                    self._free.insert(idx, (off, pad))
                    idx += 1
                tail = length - pad - nbytes
                if tail:
                    self._free.insert(idx, (start + nbytes, tail))
                buf = LSBuffer(start, nbytes, label, self._memory)
                self._live[start] = buf
                return buf
        raise LocalStoreError(
            f"local store exhausted allocating {nbytes} B for {label!r}: "
            f"{self.used_bytes} B live + {self.reserved_code_bytes} B code of "
            f"{self.capacity} B total, largest free extent "
            f"{self.largest_free_extent} B"
        )

    def alloc_aligned_line(self, nbytes: int, label: str = "line") -> LSBuffer:
        """Allocate at 128-byte (cache-line) alignment for peak-rate DMA.

        This is porting step 3 of Sec. 5 ("cache-line (128 bytes) alignment
        was enforced for the start addresses of each chunk of memory to be
        loaded into the SPU").
        """
        return self.alloc(nbytes, alignment=constants.CACHE_LINE_BYTES, label=label)

    def free(self, buf: LSBuffer) -> None:
        """Release an allocation, coalescing adjacent free extents."""
        if buf._freed or self._live.get(buf.offset) is not buf:
            raise LocalStoreError(f"double free or foreign buffer {buf.label!r}")
        del self._live[buf.offset]
        buf._freed = True
        self._free.append((buf.offset, buf.nbytes))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for off, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((off, length))
        self._free = merged

    def memset_zero(self, buf: LSBuffer) -> None:
        """Zero a buffer (porting step 5: "a memset call was issued to zero
        out each big array")."""
        buf.as_bytes()[:] = 0

    def is_dma_target_ok(self, buf: LSBuffer) -> bool:
        """True if the buffer start satisfies minimum DMA alignment."""
        return is_aligned(buf.offset, constants.DMA_QUANTUM)
