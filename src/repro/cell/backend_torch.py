"""Optional torch array backend for compiled ISA programs.

Lazy: importing this module never imports torch.  The backend is built
only when :func:`repro.cell.backend.resolve_backend` is asked for
``"torch"``, and :func:`torch_status` reports availability without
raising, so CPU-only hosts and CI without the wheel stay green.

Semantics mirror the numpy reference op for op -- madd stays the
two-operation ``a*b + c`` (``torch.addcmul`` and fused paths are
deliberately avoided), nmsub is ``c - a*b``, compare and the logical
masks cast to the program dtype, select is ``where(mask != 0, b, a)``.
On CPU float64 torch's elementwise kernels round like numpy's and the
match is exact in practice, but the *contract* is the documented
tolerance in docs/PERFORMANCE.md (``exact = False``): accelerator
devices and float32 fast paths may round differently.  ``supports_out``
is False -- the optimizer still applies dead-op elimination and
constant folding, only the preallocated-buffer plan is skipped.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from .backend import ArrayBackend
from .isa_compile import (
    OP_ADD,
    OP_AND,
    OP_CMPGT,
    OP_DIV,
    OP_MADD,
    OP_MSUB,
    OP_MUL,
    OP_NMSUB,
    OP_OR,
    OP_SEL,
    OP_SUB,
)

#: Relative tolerance the torch flux referee asserts against the numpy
#: reference (see docs/PERFORMANCE.md -- CPU float64 is exact in
#: practice; this bounds accelerator rounding).
TORCH_RTOL: float = 1e-12


def _import_torch():
    try:
        import torch  # noqa: PLC0415

        return torch
    except Exception:
        return None


def torch_available() -> bool:
    return _import_torch() is not None


def torch_status() -> dict:
    """Availability summary for :func:`repro.cell.backend.backend_status`."""
    torch = _import_torch()
    if torch is None:
        return {
            "available": False,
            "exact": False,
            "supports_out": False,
            "detail": "torch is not installed",
        }
    return {
        "available": True,
        "exact": False,
        "supports_out": False,
        "detail": f"torch {torch.__version__}"
        + (" (cuda)" if torch.cuda.is_available() else " (cpu)"),
    }


def create_torch_backend() -> "TorchBackend":
    torch = _import_torch()
    if torch is None:
        raise ConfigurationError(
            "array backend 'torch' selected but torch is not installed; "
            "use --backend numpy or install the torch CPU wheel"
        )
    return TorchBackend(torch)


class TorchBackend(ArrayBackend):
    name = "torch"
    exact = False
    supports_out = False
    is_host = False

    def __init__(self, torch) -> None:
        self.torch = torch
        self.device = torch.device(
            "cuda" if torch.cuda.is_available() else "cpu"
        )

    def _dtype(self, np_dtype):
        return (
            self.torch.float64
            if np.dtype(np_dtype) == np.float64
            else self.torch.float32
        )

    def from_host(self, array: np.ndarray):
        return self.torch.as_tensor(array, device=self.device)

    def to_host(self, array) -> np.ndarray:
        return array.cpu().numpy()

    def alloc(self, n: int, dtype):
        return self.torch.empty(n, dtype=self._dtype(dtype), device=self.device)

    def alloc_bool(self, n: int):
        return self.torch.empty(n, dtype=self.torch.bool, device=self.device)

    def empty_like(self, array):
        return self.torch.empty_like(array)

    def constants(self, values: Sequence, dtype) -> tuple:
        # 0-dim device tensors (not python floats): every op sees
        # tensors only, and the dtype never promotes.
        td = self._dtype(dtype)
        return tuple(
            self.torch.tensor(float(v), dtype=td, device=self.device)
            for v in values
        )

    def op_table(self, dtype) -> dict[int, Callable]:
        torch = self.torch
        td = self._dtype(dtype)

        return {
            OP_ADD: lambda a, b, c, out, tmp: a + b,
            OP_SUB: lambda a, b, c, out, tmp: a - b,
            OP_MUL: lambda a, b, c, out, tmp: a * b,
            OP_DIV: lambda a, b, c, out, tmp: a / b,
            # exact interpreter grouping: two ops, no fused contraction
            OP_MADD: lambda a, b, c, out, tmp: a * b + c,
            OP_MSUB: lambda a, b, c, out, tmp: a * b - c,
            OP_NMSUB: lambda a, b, c, out, tmp: c - a * b,
            OP_CMPGT: lambda a, b, c, out, tmp: (a > b).to(td),
            OP_OR: lambda a, b, c, out, tmp: ((a != 0) | (b != 0)).to(td),
            OP_AND: lambda a, b, c, out, tmp: ((a != 0) & (b != 0)).to(td),
            OP_SEL: lambda a, b, c, out, tmp: torch.where(c != 0, b, a),
        }
