"""Memory-interface-controller (MIC) timing model: bandwidth and banks.

The MIC provides 25.6 GB/s of main-memory bandwidth for the whole chip
(Sec. 2) out of 16 interleaved banks of 128-byte blocks.  Three effects the
paper tunes for are modelled mechanistically:

* **block granularity** -- the controller moves whole 128-byte blocks, so
  an unaligned or ragged transfer pays for every block it touches.  This
  is why porting step 3 enforces 128-byte alignment and why aligning the
  rows of the flattened arrays (Sec. 5) bought 3.55 s -> 3.03 s.
* **per-command overhead** -- each individual MFC command costs fixed
  cycles to enqueue and process; a DMA list amortizes that cost over up to
  2,048 elements ("converting the individual DMA commands to DMA lists").
* **bank spread** -- when concurrent transfers hammer a subset of the 16
  banks, effective bandwidth drops by the ratio of the busiest bank to the
  mean ("adding offsets to the array allocation to more fairly spread the
  memory accesses across the 16 main memory banks").

``transfer_cycles`` is a throughput model (the quantity that matters for a
bandwidth-bound sweep); latency hiding across commands is the job of
:mod:`repro.core.streaming`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..metrics.registry import NULL_REGISTRY
from ..trace.bus import MIC_TRACK, NULL_BUS
from . import constants
from .dma import AnyDMACommand, DMACommand, DMAElement, DMAListCommand, LSToLSCommand

#: Cycles for the SPU to enqueue one MFC command (channel writes for EA,
#: LSA, size, tag, opcode) plus controller decode.  Order of 100 cycles on
#: real hardware.
COMMAND_OVERHEAD_CYCLES: int = 96

#: Extra cycles for the MFC to fetch and process one DMA-list element.
LIST_ELEMENT_OVERHEAD_CYCLES: int = 12

#: Aggregate main-memory bandwidth in bytes per SPU cycle:
#: 25.6 GB/s / 3.2 GHz = 8 bytes/cycle for the whole chip.
BYTES_PER_CYCLE: float = constants.MIC_BANDWIDTH / constants.CLOCK_HZ

#: Entry cap of the per-model transfer-cost memo (cleared wholesale on
#: overflow -- correctness never depends on a hit).
COST_CACHE_MAX_ENTRIES: int = 1 << 16


def blocks_touched(elements: Iterable[DMAElement]) -> int:
    """Number of 128-byte memory blocks a set of transfer elements touches."""
    stride = constants.MEMORY_BANK_STRIDE
    total = 0
    for el in elements:
        first = el.ea // stride
        last = (el.ea + max(el.size, 1) - 1) // stride
        total += last - first + 1
    return total


def bank_histogram(elements: Iterable[DMAElement]) -> Counter[int]:
    """128-byte block count per memory bank."""
    hist: Counter[int] = Counter()
    for el in elements:
        for bank in el.banks():
            hist[bank] += 1
    return hist


def bank_spread_factor(elements: Sequence[DMAElement]) -> float:
    """Slowdown factor >= 1 from uneven bank utilisation.

    With perfectly even access the factor is 1.0; if every block lands in
    one bank the controller serialises on it and the factor approaches
    ``NUM_MEMORY_BANKS``.  The factor is the ratio of the busiest bank's
    load to the perfectly-even per-bank load.
    """
    hist = bank_histogram(elements)
    total = sum(hist.values())
    if total == 0:
        return 1.0
    even = total / constants.NUM_MEMORY_BANKS
    return max(hist.values()) / even if even > 0 else 1.0


@dataclass(frozen=True)
class TransferCost:
    """Cycle breakdown of a batch of DMA commands through the MIC."""

    payload_bytes: int
    touched_bytes: int
    command_overhead_cycles: float
    bandwidth_cycles: float
    bank_factor: float

    @property
    def total_cycles(self) -> float:
        return self.command_overhead_cycles + self.bandwidth_cycles * self.bank_factor

    def total_cycles_scaled(self, overhead_scale: float = 1.0) -> float:
        """Total cycles with the command/element overheads scaled -- used
        for granularity what-ifs that change command structure but not
        payload (Figure 10's "increasing the communication granularity")."""
        return (
            self.command_overhead_cycles * overhead_scale
            + self.bandwidth_cycles * self.bank_factor
        )

    @property
    def efficiency(self) -> float:
        """Achieved fraction of peak bandwidth for the payload bytes."""
        if self.total_cycles == 0:
            return 1.0
        ideal = self.payload_bytes / BYTES_PER_CYCLE
        return ideal / self.total_cycles


class MemoryTimingModel:
    """Computes transfer costs for batches of DMA commands.

    ``overlap_commands`` models the MFC's ability to pipeline queued
    commands: command overheads beyond the first are hidden behind data
    movement when the queue is kept non-empty (the MFC "accepts and
    processes DMA commands ... in parallel with the data transfer").
    """

    def __init__(self, overlap_commands: bool = True, bank_weight: float = 1.0) -> None:
        """``bank_weight`` scales how much of the raw bank-imbalance ratio
        is exposed as slowdown: the controller reorders across its open
        banks, so the histogram ratio is an upper bound.  1.0 exposes it
        fully; the calibrated application model uses a small weight (see
        ``repro.perf.calibration.BANK_CONFLICT_WEIGHT``)."""
        if not 0.0 <= bank_weight <= 1.0:
            raise ValueError(f"bank_weight must be in [0, 1], got {bank_weight}")
        self.overlap_commands = overlap_commands
        self.bank_weight = bank_weight
        #: trace bus (see ``CellBE.install_trace``); emission happens on
        #: every ``cost`` call -- memo hit or miss -- so the event stream
        #: is independent of cache warmth.
        self.trace = NULL_BUS
        #: metrics registry (see ``CellBE.install_metrics``); fed on
        #: every ``cost`` call, memo hit or miss, like the trace hook.
        self.metrics = NULL_REGISTRY
        # Memo of computed costs keyed by the batch's address signature.
        # The cost is a pure function of the per-command signatures (type,
        # element EAs and sizes), so recurring chunk programs -- the common
        # case in a sweep, where working-set shapes repeat across angle
        # blocks, octants and iterations -- skip the Python-level bank
        # histogram and block walk entirely.  TransferCost is frozen, so
        # sharing the instance is safe.
        self._cost_cache: dict[tuple, TransferCost] = {}

    def cost(
        self,
        commands: Sequence[AnyDMACommand],
        signature: tuple | None = None,
    ) -> TransferCost:
        """Throughput cost of issuing and completing ``commands``.

        ``signature`` lets callers that already computed the batch's
        address signature (the MFC drain path) skip rebuilding it.
        """
        if signature is not None:
            key = signature
        else:
            try:
                key = tuple(cmd.cost_signature for cmd in commands)
            except AttributeError:  # foreign command type without a signature
                key = None
        result = self._cost_cache.get(key) if key is not None else None
        if result is None:
            result = self._cost_uncached(commands)
            if key is not None:
                if len(self._cost_cache) >= COST_CACHE_MAX_ENTRIES:
                    self._cost_cache.clear()
                self._cost_cache[key] = result
        if self.metrics.enabled:
            m = self.metrics
            m.count("mic.batches")
            m.count("mic.payload_bytes", result.payload_bytes)
            m.count("mic.touched_bytes", result.touched_bytes)
            # the bank-imbalance penalty alone, so `mic.bank_penalty_ticks
            # / spe*.dma_wait_ticks` reads off what uneven bank spread
            # costs -- the quantity the paper's bank offsets tune away.
            m.add_cycles(
                "mic.bank_penalty_ticks",
                result.bandwidth_cycles * (result.bank_factor - 1.0),
            )
        if self.trace.enabled:
            self.trace.instant(
                MIC_TRACK, "MicBankAccess",
                commands=len(commands), payload_bytes=result.payload_bytes,
                touched_bytes=result.touched_bytes,
                bank_factor=result.bank_factor,
            )
        return result

    def _cost_uncached(self, commands: Sequence[AnyDMACommand]) -> TransferCost:
        payload = 0
        elements: list[DMAElement] = []
        overhead = 0.0
        ls_to_ls_bytes = 0
        for cmd in commands:
            payload += cmd.total_bytes
            elements.extend(cmd.elements())
            if isinstance(cmd, DMAListCommand):
                overhead += COMMAND_OVERHEAD_CYCLES
                overhead += LIST_ELEMENT_OVERHEAD_CYCLES * len(cmd.elements_spec)
            elif isinstance(cmd, LSToLSCommand):
                # rides the EIB at the per-port rate; no memory banks.
                overhead += COMMAND_OVERHEAD_CYCLES
                ls_to_ls_bytes += cmd.total_bytes
            elif isinstance(cmd, DMACommand):
                overhead += COMMAND_OVERHEAD_CYCLES
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown DMA command type {type(cmd)!r}")
        touched = blocks_touched(elements) * constants.MEMORY_BANK_STRIDE
        bw_cycles = (
            touched / BYTES_PER_CYCLE
            + ls_to_ls_bytes / constants.LS_PORT_BYTES_PER_CYCLE
        )
        if self.overlap_commands and len(commands) > 1:
            # All overheads but the first hide behind earlier transfers,
            # to the extent the data movement is long enough to cover them.
            exposed = COMMAND_OVERHEAD_CYCLES + max(
                0.0, (overhead - COMMAND_OVERHEAD_CYCLES) - bw_cycles
            )
            overhead = exposed
        raw_factor = bank_spread_factor(elements)
        return TransferCost(
            payload_bytes=payload,
            touched_bytes=touched,
            command_overhead_cycles=overhead,
            bandwidth_cycles=bw_cycles,
            bank_factor=1.0 + (raw_factor - 1.0) * self.bank_weight,
        )
