"""The SPE atomic unit: lwarx/stwcx-style reservations on cache lines.

Sec. 2: "More complex synchronization mechanisms are supported by a set of
atomic operations available to the SPU that operate in a very similar
manner to the lwarx/stwcx atomic instructions of the PowerPC architecture.
In fact, the SPEs' atomic operations can seamlessly interoperate with
PPE's atomic instructions."

The model provides load-with-reservation / store-conditional over 128-byte
lines of a shared :class:`AtomicDomain`.  Any intervening store to the
same line (by any unit) kills outstanding reservations, exactly the
semantics the distributed work-queue scheduler
(:mod:`repro.core.scheduler`) needs for its fetch-and-add of the global
work index -- the Figure 10 "distributed algorithm across the SPEs".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AtomicError
from . import constants

#: Cycles for one atomic load-and-reserve or store-conditional round trip
#: through the atomic unit (cache-line granularity over the EIB).
ATOMIC_OP_CYCLES: int = 200


@dataclass
class AtomicDomain:
    """A set of word-addressed shared variables with line reservations.

    Variables are identified by name; each lives on its own 128-byte line
    (the paper's code pads shared words to line granularity to avoid false
    sharing, and so do we -- by construction).
    """

    values: dict[str, int] = field(default_factory=dict)
    #: name -> set of unit ids holding a reservation
    _reservations: dict[str, set[str]] = field(default_factory=dict)
    #: total atomic-unit cycles charged (for the perf model)
    cycles: float = 0.0

    def define(self, name: str, initial: int = 0) -> None:
        """Create a shared variable."""
        if name in self.values:
            raise AtomicError(f"atomic variable {name!r} already defined")
        self.values[name] = initial
        self._reservations[name] = set()

    def load_reserve(self, unit: str, name: str) -> int:
        """``lwarx``: load and establish a reservation for ``unit``."""
        if name not in self.values:
            raise AtomicError(f"unknown atomic variable {name!r}")
        self._reservations[name].add(unit)
        self.cycles += ATOMIC_OP_CYCLES
        return self.values[name]

    def store_conditional(self, unit: str, name: str, value: int) -> bool:
        """``stwcx``: store iff ``unit`` still holds its reservation.

        A successful store invalidates everyone's reservations on the
        line; a failed store leaves the value untouched.
        """
        if name not in self.values:
            raise AtomicError(f"unknown atomic variable {name!r}")
        self.cycles += ATOMIC_OP_CYCLES
        holders = self._reservations[name]
        if unit not in holders:
            return False
        self.values[name] = value
        holders.clear()
        return True

    def plain_store(self, unit: str, name: str, value: int) -> None:
        """A non-atomic store: kills all reservations on the line."""
        if name not in self.values:
            raise AtomicError(f"unknown atomic variable {name!r}")
        self.values[name] = value
        self._reservations[name].clear()

    def fetch_and_add(self, unit: str, name: str, delta: int) -> tuple[int, int]:
        """Retry loop of load-reserve/store-conditional.

        Returns ``(previous_value, attempts)``.  Contention shows up as
        extra attempts, each charged :data:`ATOMIC_OP_CYCLES` twice -- the
        quantity the distributed-scheduler model uses.
        """
        attempts = 0
        while True:
            attempts += 1
            if attempts > 10_000:  # pragma: no cover - defensive
                raise AtomicError(f"livelock on atomic variable {name!r}")
            old = self.load_reserve(unit, name)
            if self.store_conditional(unit, name, old + delta):
                return old, attempts
