"""Memory Flow Controller: per-SPE DMA command queue with tag groups.

Each SPE owns an MFC that queues DMA commands and executes them
asynchronously while the SPU keeps computing (Sec. 2: "DMA commands are
queued in the MFC, and the SPU or PPE ... can continue execution in
parallel with the data transfer").  Completion is tracked per *tag group*
(tags 0-31): the SPU waits on a tag mask to know a group of transfers has
finished.  Double buffering in :mod:`repro.core.streaming` is exactly the
discipline of keeping two tag groups in flight.

Functionally, commands copy bytes when :meth:`MFC.drain_tag` (or
``drain_all``) runs, so a kernel that forgets to wait reads stale local
store -- the same bug it would have on hardware.  The timing side charges
each command batch through the shared :class:`~repro.cell.mic.MemoryTimingModel`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import MFCError
from .dma import AnyDMACommand
from .mic import MemoryTimingModel, TransferCost
from . import constants


@dataclass
class TagStats:
    """Accumulated traffic statistics for one MFC (all tags)."""

    commands: int = 0
    list_elements: int = 0
    bytes_get: int = 0
    bytes_put: int = 0
    cycles: float = 0.0
    #: histogram of transfer-element sizes -- Sec. 6 characterizes the
    #: measured implementation as "lists of 512-byte DMAs (both for
    #: puts and gets)", and this is where that distribution shows up.
    element_sizes: Counter = field(default_factory=Counter)

    @property
    def total_bytes(self) -> int:
        return self.bytes_get + self.bytes_put

    def dominant_element_size(self) -> int | None:
        """Most common transfer-element size (by byte volume)."""
        if not self.element_sizes:
            return None
        return max(
            self.element_sizes, key=lambda s: s * self.element_sizes[s]
        )


class MFC:
    """One SPE's memory flow controller.

    The queue depth is finite (16 commands on real hardware); enqueueing
    into a full queue raises :class:`MFCError`, forcing callers to model
    the back-pressure a real SPU program experiences.
    """

    def __init__(
        self,
        spe_id: int,
        timing: MemoryTimingModel | None = None,
        queue_depth: int = constants.MFC_QUEUE_DEPTH,
    ) -> None:
        self.spe_id = spe_id
        self.timing = timing or MemoryTimingModel()
        self.queue_depth = queue_depth
        self._queue: dict[int, list[AnyDMACommand]] = {}
        self.stats = TagStats()

    # -- queue management --------------------------------------------------

    def _pending_count(self) -> int:
        return sum(len(v) for v in self._queue.values())

    def enqueue(self, command: AnyDMACommand) -> None:
        """Queue one validated DMA command under its tag."""
        if self._pending_count() >= self.queue_depth:
            raise MFCError(
                f"SPE {self.spe_id}: MFC queue full "
                f"({self.queue_depth} commands pending); wait on a tag first"
            )
        self._queue.setdefault(command.tag, []).append(command)

    def pending_tags(self) -> set[int]:
        """Tags with at least one command still in flight."""
        return {t for t, cmds in self._queue.items() if cmds}

    # -- completion ---------------------------------------------------------

    def _drain(self, commands: list[AnyDMACommand]) -> TransferCost:
        from .dma import DMAKind, DMAListCommand

        cost = self.timing.cost(commands)
        for cmd in commands:
            cmd.execute()
            self.stats.commands += 1
            if isinstance(cmd, DMAListCommand):
                self.stats.list_elements += len(cmd.elements_spec)
                for _, size in cmd.elements_spec:
                    self.stats.element_sizes[size] += 1
            else:
                self.stats.element_sizes[cmd.total_bytes] += 1
            if cmd.kind is DMAKind.GET:
                self.stats.bytes_get += cmd.total_bytes
            else:
                self.stats.bytes_put += cmd.total_bytes
        self.stats.cycles += cost.total_cycles
        return cost

    def drain_tag(self, tag: int) -> TransferCost:
        """Complete every command in one tag group (``mfc_write_tag_mask``
        + ``mfc_read_tag_status_all`` on hardware).

        Returns the modelled :class:`TransferCost` of the batch.  Waiting
        on a tag with nothing in flight is a protocol error: on hardware
        it returns instantly, but in every Sweep3D use it indicates a
        double-wait bug, so the model rejects it.
        """
        cmds = self._queue.pop(tag, [])
        if not cmds:
            raise MFCError(f"SPE {self.spe_id}: wait on empty tag group {tag}")
        return self._drain(cmds)

    def drain_all(self) -> TransferCost | None:
        """Complete every pending command across all tags (barrier)."""
        cmds: list[AnyDMACommand] = []
        for tag in sorted(self._queue):
            cmds.extend(self._queue.pop(tag))
        if not cmds:
            return None
        return self._drain(cmds)
