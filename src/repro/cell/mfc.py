"""Memory Flow Controller: per-SPE DMA command queue with tag groups.

Each SPE owns an MFC that queues DMA commands and executes them
asynchronously while the SPU keeps computing (Sec. 2: "DMA commands are
queued in the MFC, and the SPU or PPE ... can continue execution in
parallel with the data transfer").  Completion is tracked per *tag group*
(tags 0-31): the SPU waits on a tag mask to know a group of transfers has
finished.  Double buffering in :mod:`repro.core.streaming` is exactly the
discipline of keeping two tag groups in flight.

Functionally, commands copy bytes when :meth:`MFC.drain_tag` (or
``drain_all``) runs, so a kernel that forgets to wait reads stale local
store -- the same bug it would have on hardware.  The timing side charges
each command batch through the shared :class:`~repro.cell.mic.MemoryTimingModel`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import MFCError
from ..metrics.registry import NULL_REGISTRY, spe_metric
from ..trace.bus import NULL_BUS, spe_track
from .dma import AnyDMACommand
from .mic import MemoryTimingModel, TransferCost
from . import constants


@dataclass
class TagStats:
    """Accumulated traffic statistics for one MFC (all tags)."""

    commands: int = 0
    list_elements: int = 0
    bytes_get: int = 0
    bytes_put: int = 0
    cycles: float = 0.0
    #: histogram of transfer-element sizes -- Sec. 6 characterizes the
    #: measured implementation as "lists of 512-byte DMAs (both for
    #: puts and gets)", and this is where that distribution shows up.
    element_sizes: Counter = field(default_factory=Counter)

    @property
    def total_bytes(self) -> int:
        return self.bytes_get + self.bytes_put

    def dominant_element_size(self) -> int | None:
        """Most common transfer-element size (by byte volume)."""
        if not self.element_sizes:
            return None
        return max(
            self.element_sizes, key=lambda s: s * self.element_sizes[s]
        )


class MFC:
    """One SPE's memory flow controller.

    The queue depth is finite (16 commands on real hardware); enqueueing
    into a full queue raises :class:`MFCError`, forcing callers to model
    the back-pressure a real SPU program experiences.
    """

    def __init__(
        self,
        spe_id: int,
        timing: MemoryTimingModel | None = None,
        queue_depth: int = constants.MFC_QUEUE_DEPTH,
    ) -> None:
        self.spe_id = spe_id
        self.timing = timing or MemoryTimingModel()
        self.queue_depth = queue_depth
        self._queue: dict[int, list[AnyDMACommand]] = {}
        self._pending = 0
        self.stats = TagStats()
        #: trace bus (chip-wide; see ``CellBE.install_trace``).  The
        #: shared null bus makes every hook a single-branch no-op.
        self.trace = NULL_BUS
        #: metrics registry (chip-wide; see ``CellBE.install_metrics``)
        self.metrics = NULL_REGISTRY
        # memo of per-batch traffic-accounting deltas keyed by the batch's
        # address signature: replayed chunk programs (the common case, see
        # repro.core.streaming) skip the per-command accounting loop.  The
        # accumulated stats are identical either way.
        self._batch_stats_cache: dict[tuple, tuple] = {}

    # -- queue management --------------------------------------------------

    def _pending_count(self) -> int:
        return self._pending

    def enqueue(self, command: AnyDMACommand) -> None:
        """Queue one validated DMA command under its tag."""
        if self._pending >= self.queue_depth:
            raise MFCError(
                f"SPE {self.spe_id}: MFC queue full "
                f"({self.queue_depth} commands pending); wait on a tag first"
            )
        self._queue.setdefault(command.tag, []).append(command)
        self._pending += 1
        if self.metrics.enabled:
            self.metrics.gauge_max(
                spe_metric(self.spe_id, "mfc_queue_depth"), self._pending
            )
        if self.trace.enabled:
            self.trace.instant(
                spe_track(self.spe_id), "DmaEnqueue",
                tag=command.tag, kind=command.kind.value,
                bytes=command.total_bytes, depth=self._pending,
                regions=[list(r) for r in command.ls_regions()],
            )

    def pending_tags(self) -> set[int]:
        """Tags with at least one command still in flight."""
        return {t for t, cmds in self._queue.items() if cmds}

    # -- completion ---------------------------------------------------------

    def _drain(self, commands: list[AnyDMACommand]) -> TransferCost:
        from .dma import DMAKind, DMAListCommand

        try:
            signature = tuple(cmd.cost_signature for cmd in commands)
        except AttributeError:  # foreign command type without a signature
            signature = None
        cost = self.timing.cost(commands, signature=signature)
        for cmd in commands:
            cmd.execute()
        delta = (
            self._batch_stats_cache.get(signature)
            if signature is not None
            else None
        )
        if delta is None:
            n_elements = 0
            bytes_get = 0
            bytes_put = 0
            sizes: Counter = Counter()
            for cmd in commands:
                if isinstance(cmd, DMAListCommand):
                    n_elements += len(cmd.elements_spec)
                    for _, size in cmd.elements_spec:
                        sizes[size] += 1
                else:
                    sizes[cmd.total_bytes] += 1
                if cmd.kind is DMAKind.GET:
                    bytes_get += cmd.total_bytes
                else:
                    bytes_put += cmd.total_bytes
            delta = (len(commands), n_elements, bytes_get, bytes_put, sizes)
            if signature is not None:
                if len(self._batch_stats_cache) >= 1 << 16:
                    self._batch_stats_cache.clear()
                self._batch_stats_cache[signature] = delta
        self.stats.commands += delta[0]
        self.stats.list_elements += delta[1]
        self.stats.bytes_get += delta[2]
        self.stats.bytes_put += delta[3]
        self.stats.element_sizes.update(delta[4])
        self.stats.cycles += cost.total_cycles
        if self.metrics.enabled:
            m = self.metrics
            m.add_cycles(spe_metric(self.spe_id, "dma_wait_ticks"), cost.total_cycles)
            m.count("dma.commands", delta[0])
            m.count("dma.list_elements", delta[1])
            m.count("dma.bytes_get", delta[2])
            m.count("dma.bytes_put", delta[3])
            for size in sorted(delta[4]):
                m.observe("dma.element_bytes", size, delta[4][size])
        if self.trace.enabled:
            self.trace.span(
                spe_track(self.spe_id), "DmaComplete", cost.total_cycles,
                tags=sorted({cmd.tag for cmd in commands}),
                commands=delta[0], bytes_get=delta[2], bytes_put=delta[3],
                bank_factor=cost.bank_factor,
            )
        return cost

    def drain_tag(self, tag: int) -> TransferCost:
        """Complete every command in one tag group (``mfc_write_tag_mask``
        + ``mfc_read_tag_status_all`` on hardware).

        Returns the modelled :class:`TransferCost` of the batch.  Waiting
        on a tag with nothing in flight is a protocol error: on hardware
        it returns instantly, but in every Sweep3D use it indicates a
        double-wait bug, so the model rejects it.
        """
        cmds = self._queue.pop(tag, [])
        if not cmds:
            raise MFCError(f"SPE {self.spe_id}: wait on empty tag group {tag}")
        self._pending -= len(cmds)
        return self._drain(cmds)

    def drain_all(self) -> TransferCost | None:
        """Complete every pending command across all tags (barrier)."""
        cmds: list[AnyDMACommand] = []
        for tag in sorted(self._queue):
            cmds.extend(self._queue.pop(tag))
        if not cmds:
            return None
        self._pending -= len(cmds)
        return self._drain(cmds)
