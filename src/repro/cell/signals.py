"""SPE signal-notification registers.

Each SPE has two 32-bit signal-notification registers that other units can
write.  In *OR mode* concurrent writers accumulate bits (the useful mode
for "many producers, one waiter" synchronization); in *overwrite mode* the
last write wins.  Reading a signal register returns and clears it.

Signals complement mailboxes: a mailbox is a FIFO of values, a signal is a
bitmask rendezvous.  The distributed scheduler experiment
(:mod:`repro.core.scheduler`) uses OR-mode signals so eight SPEs can flag
completion without serialising through the PPE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SignalError
from ..trace.bus import NULL_BUS, spe_track

#: SPU channel read of its own signal register, cycles.
SPU_SIGNAL_READ_CYCLES: int = 12

#: Remote (SPE or PPE) write of another SPE's signal register: travels the
#: EIB like a small DMA.
REMOTE_SIGNAL_WRITE_CYCLES: int = 140


@dataclass
class SignalRegister:
    """One 32-bit signal-notification register."""

    name: str
    or_mode: bool = True
    value: int = 0
    pending: bool = False
    #: trace bus and owning track (see ``CellBE.install_trace``)
    trace: object = field(default=NULL_BUS, repr=False, compare=False)
    track: str = field(default="SPE?", repr=False, compare=False)

    def write(self, bits: int) -> int:
        """Deposit ``bits``; returns the modelled remote-write cycles."""
        if not 0 <= bits < 2**32:
            raise SignalError(f"{self.name}: signal values are 32-bit, got {bits}")
        if self.or_mode:
            self.value |= bits
        else:
            self.value = bits
        self.pending = True
        if self.trace.enabled:
            self.trace.instant(
                self.track, "SignalNotify", register=self.name, bits=bits,
                or_mode=self.or_mode, cycles=REMOTE_SIGNAL_WRITE_CYCLES,
            )
        return REMOTE_SIGNAL_WRITE_CYCLES

    def read(self) -> tuple[int, int]:
        """Read-and-clear; returns (value, cycles).

        Reading with nothing pending is a stall on hardware; the model
        raises so tests catch missed-signal protocol bugs.
        """
        if not self.pending:
            raise SignalError(
                f"{self.name}: read with no signal pending; "
                f"a hardware reader would stall"
            )
        value, self.value, self.pending = self.value, 0, False
        return value, SPU_SIGNAL_READ_CYCLES

    def try_read(self) -> tuple[int | None, int]:
        """Non-blocking poll; returns (value or None, cycles)."""
        if not self.pending:
            return None, SPU_SIGNAL_READ_CYCLES
        value, self.value, self.pending = self.value, 0, False
        return value, SPU_SIGNAL_READ_CYCLES


class SignalUnit:
    """The two signal registers of one SPE (Sig_Notify_1 / Sig_Notify_2)."""

    def __init__(self, spe_id: int, or_mode: bool = True) -> None:
        self.spe_id = spe_id
        track = spe_track(spe_id)
        self.sig1 = SignalRegister(f"SPE{spe_id}.Sig_Notify_1", or_mode, track=track)
        self.sig2 = SignalRegister(f"SPE{spe_id}.Sig_Notify_2", or_mode, track=track)
