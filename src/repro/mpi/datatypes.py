"""Message envelopes and matching rules for the simulated MPI runtime.

The paper's process-level parallelism "maintains the wavefront parallelism
already implemented in MPI" (Sec. 4, level 1).  We reproduce the MPI
point-to-point semantics Sweep3D actually uses: typed array payloads,
(source, tag) matching with wildcards, and non-overtaking order between a
given (source, destination) pair.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import CommunicatorError

#: Wildcard source: match a message from any rank.
ANY_SOURCE: int = -1

#: Wildcard tag: match a message with any tag.
ANY_TAG: int = -1

_seq = itertools.count()


@dataclass(frozen=True)
class Envelope:
    """One in-flight message."""

    source: int
    dest: int
    tag: int
    payload: Any = field(repr=False)
    #: global arrival sequence number; preserves non-overtaking order.
    seq: int = field(default_factory=lambda: next(_seq))

    def matches(self, source: int, tag: int) -> bool:
        """True if this envelope satisfies a receive for (source, tag)."""
        src_ok = source == ANY_SOURCE or source == self.source
        tag_ok = tag == ANY_TAG or tag == self.tag
        return src_ok and tag_ok


@dataclass(frozen=True)
class Status:
    """Receive status: who actually sent, with which tag."""

    source: int
    tag: int
    count: int


def freeze_payload(data: Any) -> Any:
    """Snapshot a payload at send time (MPI send-buffer semantics).

    NumPy arrays are copied so later mutation by the sender cannot change
    the message; scalars and immutable objects pass through.
    """
    if isinstance(data, np.ndarray):
        return data.copy()
    if isinstance(data, (bool, int, float, complex, str, bytes, type(None), np.generic)):
        return data
    # containers of arrays used by collectives
    if isinstance(data, tuple):
        return tuple(freeze_payload(x) for x in data)
    if isinstance(data, list):
        return [freeze_payload(x) for x in data]
    if isinstance(data, dict):
        return {k: freeze_payload(v) for k, v in data.items()}
    raise CommunicatorError(
        f"unsupported payload type {type(data).__name__}; "
        f"send NumPy arrays or plain scalars/containers"
    )


def payload_count(data: Any) -> int:
    """Element count reported in :class:`Status`."""
    if isinstance(data, np.ndarray):
        return int(data.size)
    if isinstance(data, (list, tuple)):
        return len(data)
    return 1
