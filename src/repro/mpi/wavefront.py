"""KBA wavefront decomposition of Sweep3D over the 2-D process grid.

This is Figure 1: the I and J axes are block-distributed over a P x Q
process array; each rank owns an ``it_local x jt_local x kt`` tile.  A
sweep starts at the corner rank of the octant's direction and propagates
as a diagonal wave; MK/MMI pipelining keeps downstream ranks busy
("sweep() is coded to pipeline blocks of MK K-planes and MMI angles
through this two-dimensional process array for each octant", Sec. 3).

The tile-local loop structure is exactly
:class:`~repro.sweep.pipelining.TileSweeper`; this module contributes the
:class:`RankBoundary` that turns the sweeper's RECV/SEND hooks into
simulated MPI messages, and :class:`KBASweep3D`, the full multi-rank
source-iteration driver whose result must equal the serial solver's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import CommunicatorError
from ..sweep.flux import SolveResult, SweepTally
from ..sweep.geometry import Grid
from ..sweep.input import InputDeck
from ..sweep.pipelining import TileSweeper
from ..sweep.quadrature import Quadrature, OCTANT_SIGNS
from .comm import SimComm
from .runtime import run_ranks
from .topology import Cart2D, dims_create, split_extent

#: tag axes for boundary messages
_AXIS_I = 0
_AXIS_J = 1

#: field widths of the packed face-message tag; every field is validated
#: on encode, because an overflowing ``kblock`` would not grow the tag
#: past any global ceiling -- it would silently alias into the
#: neighbouring ``ablock`` field and route the face to the wrong unit.
TAG_AXES = 2
TAG_OCTANTS = 8
TAG_ABLOCKS = 16
TAG_KBLOCKS = 512

#: exclusive upper bound of the face-message tag space
TAG_LIMIT = TAG_AXES * TAG_OCTANTS * TAG_ABLOCKS * TAG_KBLOCKS


def _tag(axis: int, octant: int, ablock: int, kblock: int) -> int:
    """Unique tag per (axis, octant, angle block, K block)."""
    if not 0 <= axis < TAG_AXES:
        raise CommunicatorError(f"tag axis {axis} outside 0..{TAG_AXES - 1}")
    if not 0 <= octant < TAG_OCTANTS:
        raise CommunicatorError(
            f"tag octant {octant} outside 0..{TAG_OCTANTS - 1}"
        )
    if not 0 <= ablock < TAG_ABLOCKS:
        raise CommunicatorError(
            f"tag angle-block {ablock} exceeds the {TAG_ABLOCKS}-slot "
            f"field; reduce angles/mmi"
        )
    if not 0 <= kblock < TAG_KBLOCKS:
        raise CommunicatorError(
            f"tag K-block {kblock} exceeds the {TAG_KBLOCKS}-slot field; "
            f"reduce kt/mk"
        )
    return ((axis * TAG_OCTANTS + octant) * TAG_ABLOCKS + ablock) \
        * TAG_KBLOCKS + kblock


class RankBoundary:
    """BoundaryIO that exchanges tile faces with grid neighbours.

    Directions are resolved per octant: in oriented coordinates the
    sweeper always consumes a "west" I-inflow and a "north" J-inflow; for
    an octant sweeping -I those map to the *east* neighbour, and so on.
    Faces at the global domain edge are vacuum inflows / leakage outflows.
    """

    def __init__(
        self,
        deck: InputDeck,
        quad: Quadrature,
        comm: SimComm,
        cart: Cart2D,
        mmi: int,
        mk: int,
        metrics=None,
    ) -> None:
        self.deck = deck
        self.quad = quad
        self.comm = comm
        self.cart = cart
        self.mmi = mmi
        self.mk = mk
        self.leakage = 0.0
        #: optional per-rank registry: face sends count as ``cluster.*``
        #: so the threaded runtime's merged registry matches the DAG
        #: engine's parent-side wire counts (the queue is both wire
        #: halves at once, hence sent == recv)
        self.metrics = metrics

    def _count_wire(self, data) -> None:
        if self.metrics is None:
            return
        nbytes = int(data.nbytes)
        self.metrics.count("cluster.msgs_sent")
        self.metrics.count("cluster.msgs_recv")
        self.metrics.count("cluster.bytes_sent", nbytes)
        self.metrics.count("cluster.bytes_recv", nbytes)

    def _tally(self, contribution: float) -> None:
        # single funnel for domain-edge leakage, one call per
        # (send, angle); repro.parallel subclasses record the exact
        # per-contribution chain to refold reductions bit-identically
        self.leakage += contribution

    # -- direction resolution -------------------------------------------------

    def _upstream_i(self, octant: int) -> int | None:
        sx = OCTANT_SIGNS[octant][0]
        return (
            self.cart.west(self.comm.rank)
            if sx > 0
            else self.cart.east(self.comm.rank)
        )

    def _downstream_i(self, octant: int) -> int | None:
        sx = OCTANT_SIGNS[octant][0]
        return (
            self.cart.east(self.comm.rank)
            if sx > 0
            else self.cart.west(self.comm.rank)
        )

    def _upstream_j(self, octant: int) -> int | None:
        sy = OCTANT_SIGNS[octant][1]
        return (
            self.cart.north(self.comm.rank)
            if sy > 0
            else self.cart.south(self.comm.rank)
        )

    def _downstream_j(self, octant: int) -> int | None:
        sy = OCTANT_SIGNS[octant][1]
        return (
            self.cart.south(self.comm.rank)
            if sy > 0
            else self.cart.north(self.comm.rank)
        )

    # -- BoundaryIO ----------------------------------------------------------

    def _blocks(self, angles: Sequence[int], k0: int) -> tuple[int, int]:
        return angles[0] // self.mmi, k0 // self.mk

    def recv_i(self, octant, angles, k0, jt, it):
        src = self._upstream_i(octant)
        if src is None:
            return np.zeros((len(angles), self.mk, jt))
        ablock, kb = self._blocks(angles, k0)
        return self.comm.recv(src, _tag(_AXIS_I, octant, ablock, kb))

    def recv_j(self, octant, angles, k0, jt, it):
        src = self._upstream_j(octant)
        if src is None:
            return np.zeros((len(angles), self.mk, it))
        ablock, kb = self._blocks(angles, k0)
        return self.comm.recv(src, _tag(_AXIS_J, octant, ablock, kb))

    def send_i(self, octant, angles, k0, data):
        dest = self._downstream_i(octant)
        ablock, kb = self._blocks(angles, k0)
        if dest is not None:
            self.comm.send(data, dest, _tag(_AXIS_I, octant, ablock, kb))
            self._count_wire(data)
            return
        g = self.deck.grid
        base = octant * self.quad.per_octant
        for a_local, a in enumerate(angles):
            m = base + a
            self._tally(float(
                self.quad.weight[m] * abs(self.quad.mu[m])
                * data[a_local].sum() * g.dy * g.dz
            ))

    def send_j(self, octant, angles, k0, data):
        dest = self._downstream_j(octant)
        ablock, kb = self._blocks(angles, k0)
        if dest is not None:
            self.comm.send(data, dest, _tag(_AXIS_J, octant, ablock, kb))
            self._count_wire(data)
            return
        g = self.deck.grid
        base = octant * self.quad.per_octant
        for a_local, a in enumerate(angles):
            m = base + a
            self._tally(float(
                self.quad.weight[m] * abs(self.quad.eta[m])
                * data[a_local].sum() * g.dx * g.dz
            ))

    def finish_octant(self, octant, angles, phik):
        # K is never decomposed: the top face is always a global boundary.
        g = self.deck.grid
        base = octant * self.quad.per_octant
        for a_local, a in enumerate(angles):
            m = base + a
            self._tally(float(
                self.quad.weight[m] * abs(self.quad.xi[m])
                * phik[a_local].sum() * g.dx * g.dy
            ))


@dataclass(frozen=True)
class TilePlan:
    """One rank's slice of the global grid."""

    p: int
    q: int
    x0: int
    nx: int
    y0: int
    ny: int

    def local_grid(self, global_grid: Grid) -> Grid:
        return Grid(
            self.nx, self.ny, global_grid.nz,
            global_grid.dx, global_grid.dy, global_grid.dz,
        )


class KBASweep3D:
    """Multi-rank Sweep3D: KBA wavefront over a simulated MPI job.

    ``sweeper_factory`` builds the per-rank tile solver from the rank's
    local deck; any object with the
    :meth:`~repro.sweep.pipelining.TileSweeper.sweep` contract (and
    ``quad``/``basis`` attributes) works.  The default is the NumPy
    :class:`~repro.sweep.pipelining.TileSweeper`;
    :class:`repro.core.cluster.CellClusterSweep3D` passes a factory that
    builds a full simulated Cell BE per rank -- the paper's levels 1-5
    all at once.
    """

    def __init__(
        self,
        deck: InputDeck,
        P: int | None = None,
        Q: int | None = None,
        sweeper_factory=None,
    ):
        if P is None or Q is None:
            P, Q = dims_create(P or Q or 4) if (P or Q) else dims_create(4)
        self.deck = deck
        self.sweeper_factory = sweeper_factory or TileSweeper
        #: when True, each rank's face sends count ``cluster.*`` wire
        #: metrics into its sweeper's registry (set by
        #: :class:`repro.core.cluster.CellClusterSweep3D`)
        self.count_wire = False
        self.cart = Cart2D(P, Q)
        if P > deck.grid.nx or Q > deck.grid.ny:
            raise CommunicatorError(
                f"process grid {P}x{Q} larger than cell grid "
                f"{deck.grid.nx}x{deck.grid.ny}"
            )
        self._x_split = split_extent(deck.grid.nx, P)
        self._y_split = split_extent(deck.grid.ny, Q)

    def plan(self, rank: int) -> TilePlan:
        p, q = self.cart.coords(rank)
        x0, nx = self._x_split[p]
        y0, ny = self._y_split[q]
        return TilePlan(p, q, x0, nx, y0, ny)

    # -- per-rank program ---------------------------------------------------------

    def _rank_program(self, comm: SimComm):
        deck = self.deck
        plan = self.plan(comm.rank)
        local_deck = deck.tile(
            (plan.x0, plan.y0, 0), plan.local_grid(deck.grid)
        )
        sweeper = self.sweeper_factory(local_deck)
        quad = sweeper.quad
        from ..sweep.moments import build_moment_source

        flux = np.zeros((deck.nm, *local_deck.grid.shape))
        history: list[float] = []
        total = SweepTally()
        for _ in range(deck.iterations):
            msrc = build_moment_source(local_deck, flux)
            boundary = RankBoundary(
                local_deck, quad, comm, self.cart, deck.mmi, deck.mk,
                metrics=(
                    getattr(sweeper, "metrics", None)
                    if self.count_wire else None
                ),
            )
            new_flux, tally, _ = sweeper.sweep(msrc, boundary=boundary)
            total.fixups += tally.fixups
            total.leakage = boundary.leakage
            diff = float(np.max(np.abs(new_flux[0] - flux[0])))
            scale = float(np.max(np.abs(new_flux[0])))
            gdiff = comm.allreduce(diff, max)
            gscale = comm.allreduce(scale, max)
            history.append(gdiff / gscale if gscale else 0.0)
            flux = new_flux
        fixups = comm.reduce(total.fixups, lambda a, b: a + b)
        leakage = comm.reduce(total.leakage, lambda a, b: a + b)
        tiles = comm.gather(flux)
        if comm.rank != 0:
            return None
        global_flux = np.zeros((deck.nm, *deck.grid.shape))
        for rank, tile_flux in enumerate(tiles):
            tile_plan = self.plan(rank)
            global_flux[
                :,
                tile_plan.x0 : tile_plan.x0 + tile_plan.nx,
                tile_plan.y0 : tile_plan.y0 + tile_plan.ny,
                :,
            ] = tile_flux
        return SolveResult(
            flux=global_flux,
            iterations=deck.iterations,
            history=history,
            tally=SweepTally(fixups=fixups, leakage=leakage),
            converged=True,
        )

    def solve(self) -> SolveResult:
        """Run the job and return the reassembled global solution."""
        results = run_ranks(self.cart.size, self._rank_program)
        return results[0]
