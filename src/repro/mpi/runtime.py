"""Thread-backed rank runtime for the simulated MPI job.

Each rank's program runs in a real thread against the shared
:class:`~repro.mpi.comm.Fabric`.  The runner propagates the first rank
exception to the caller (after tearing the fabric down so no rank hangs)
and returns every rank's return value -- the ergonomics of
``mpiexec -n SIZE`` collapsed into a function call, which is what makes
the KBA wavefront testable in-process.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..errors import DeadlockError, MPIError
from .comm import Fabric, SimComm


def run_ranks(
    size: int,
    program: Callable[[SimComm], Any],
    timeout: float | None = 120.0,
) -> list[Any]:
    """Run ``program(comm)`` on ``size`` ranks; return their results.

    Raises the first rank failure.  ``DeadlockError`` raised inside ranks
    (by exact detection in the fabric) surfaces here as a single error.
    """
    fabric = Fabric(size)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def body(rank: int) -> None:
        comm = SimComm(rank, fabric)
        try:
            results[rank] = program(comm)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            with lock:
                errors.append((rank, exc))
        finally:
            fabric.mark_done(rank)

    threads = [
        threading.Thread(target=body, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():  # pragma: no cover - hard safety net
            raise MPIError(f"rank thread {t.name} did not finish within {timeout}s")
    if errors:
        errors.sort(key=lambda e: e[0])
        rank, exc = errors[0]
        if isinstance(exc, DeadlockError):
            raise exc
        raise MPIError(f"rank {rank} failed: {exc!r}") from exc
    return results
