"""Simulated message-passing substrate and the KBA wavefront solver.

Reproduces the process-level parallelism layer of the paper (Sec. 4,
level 1): an in-process MPI-like runtime (point-to-point with matching
and exact deadlock detection, barrier, broadcast, reduce, gather) and
Figure 1's two-dimensional wavefront decomposition of Sweep3D.
"""

from .comm import Fabric, Request, SimComm
from .datatypes import ANY_SOURCE, ANY_TAG, Envelope, Status
from .runtime import run_ranks
from .topology import Cart2D, dims_create, split_extent
from .wavefront import KBASweep3D, RankBoundary, TilePlan

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Cart2D",
    "Envelope",
    "Fabric",
    "KBASweep3D",
    "RankBoundary",
    "Request",
    "SimComm",
    "Status",
    "TilePlan",
    "dims_create",
    "run_ranks",
    "split_extent",
]
