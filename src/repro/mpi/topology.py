"""Two-dimensional Cartesian process topology.

"Grid cells are evenly distributed across a two-dimensional array of
processes.  In this way, each process owns a three-dimensional tile of
cells" (Sec. 3, Figure 1).  The I axis is split across ``P`` columns and
the J axis across ``Q`` rows; the K axis is never decomposed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CommunicatorError


def dims_create(size: int) -> tuple[int, int]:
    """Choose a near-square (P, Q) factorisation of ``size``
    (the MPI_Dims_create heuristic)."""
    if size < 1:
        raise CommunicatorError(f"size must be >= 1, got {size}")
    best = (1, size)
    for p in range(1, int(size**0.5) + 1):
        if size % p == 0:
            best = (p, size // p)
    # prefer the more-square orientation with P <= Q
    return best


@dataclass(frozen=True)
class Cart2D:
    """A P x Q Cartesian layout over ``P * Q`` ranks.

    Rank layout is row-major: ``rank = q * P + p`` with ``p`` the I-column
    and ``q`` the J-row, matching Figure 1's P(column, row) labelling.
    """

    P: int
    Q: int

    def __post_init__(self) -> None:
        if self.P < 1 or self.Q < 1:
            raise CommunicatorError(f"invalid process grid {self.P}x{self.Q}")

    @property
    def size(self) -> int:
        return self.P * self.Q

    def coords(self, rank: int) -> tuple[int, int]:
        """(p, q) coordinates of a rank."""
        if not 0 <= rank < self.size:
            raise CommunicatorError(
                f"rank {rank} outside {self.P}x{self.Q} grid"
            )
        return rank % self.P, rank // self.P

    def rank_of(self, p: int, q: int) -> int:
        if not (0 <= p < self.P and 0 <= q < self.Q):
            raise CommunicatorError(
                f"coords ({p}, {q}) outside {self.P}x{self.Q} grid"
            )
        return q * self.P + p

    def neighbor(self, rank: int, dp: int, dq: int) -> int | None:
        """Neighbouring rank at offset (dp, dq), or None at the boundary."""
        p, q = self.coords(rank)
        np_, nq = p + dp, q + dq
        if 0 <= np_ < self.P and 0 <= nq < self.Q:
            return self.rank_of(np_, nq)
        return None

    def west(self, rank: int) -> int | None:
        return self.neighbor(rank, -1, 0)

    def east(self, rank: int) -> int | None:
        return self.neighbor(rank, +1, 0)

    def north(self, rank: int) -> int | None:
        return self.neighbor(rank, 0, -1)

    def south(self, rank: int) -> int | None:
        return self.neighbor(rank, 0, +1)


def split_extent(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``n`` cells into ``parts`` contiguous (start, count) chunks,
    distributing the remainder to the leading chunks (MPI block layout)."""
    if parts < 1 or parts > n:
        raise CommunicatorError(
            f"cannot split {n} cells across {parts} processes"
        )
    base, extra = divmod(n, parts)
    out = []
    start = 0
    for i in range(parts):
        count = base + (1 if i < extra else 0)
        out.append((start, count))
        start += count
    return out
