"""The simulated communicator and its shared fabric.

:class:`Fabric` is the transport shared by all ranks of one job: a
per-destination list of pending envelopes guarded by one condition
variable.  Ranks run in real threads (:mod:`repro.mpi.runtime`); a
blocking receive waits on the condition.

Deadlock is detected *exactly*, not by timeout: when every live rank is
blocked in a receive and no pending message matches any of them, no
progress is possible, so the fabric raises :class:`DeadlockError` in
every blocked rank.  This catches the classic wavefront bug -- receiving
from the wrong neighbour for a reversed-direction octant -- determinis-
tically in tests.

:class:`SimComm` exposes the MPI subset Sweep3D uses (blocking and
non-blocking point-to-point, barrier, broadcast, reduce, allreduce,
gather) with mpi4py-like spellings.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import CommunicatorError, DeadlockError
from .datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    Envelope,
    Status,
    freeze_payload,
    payload_count,
)


class Fabric:
    """Shared in-process transport for one simulated job."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise CommunicatorError(f"job size must be >= 1, got {size}")
        self.size = size
        self._pending: dict[int, list[Envelope]] = {r: [] for r in range(size)}
        self._cond = threading.Condition()
        #: ranks currently blocked in recv, with their (source, tag) want
        self._blocked: dict[int, tuple[int, int]] = {}
        #: ranks that have finished their program
        self._done: set[int] = set()
        self._dead = False
        # collectives bookkeeping
        self._barrier_gen = 0
        self._barrier_count = 0

    # -- deadlock bookkeeping -------------------------------------------------

    def _progress_possible(self) -> bool:
        """Can any blocked rank be satisfied by a pending message?"""
        for rank, (src, tag) in self._blocked.items():
            if any(env.matches(src, tag) for env in self._pending[rank]):
                return True
        return False

    def _check_deadlock(self) -> None:
        live = self.size - len(self._done)
        if (
            live > 0
            and len(self._blocked) == live
            and not self._progress_possible()
        ):
            self._dead = True
            self._cond.notify_all()

    def mark_done(self, rank: int) -> None:
        with self._cond:
            self._done.add(rank)
            self._check_deadlock()

    # -- point to point ---------------------------------------------------------

    def post(self, env: Envelope) -> None:
        if not 0 <= env.dest < self.size:
            raise CommunicatorError(
                f"destination {env.dest} outside job of size {self.size}"
            )
        with self._cond:
            if self._dead:
                raise DeadlockError("communication fabric is dead")
            self._pending[env.dest].append(env)
            self._cond.notify_all()

    def take(self, rank: int, source: int, tag: int) -> Envelope:
        with self._cond:
            while True:
                if self._dead:
                    raise DeadlockError(
                        f"deadlock: rank {rank} waiting on (source={source}, "
                        f"tag={tag}) with no sender able to satisfy it"
                    )
                box = self._pending[rank]
                match = next((e for e in box if e.matches(source, tag)), None)
                if match is not None:
                    box.remove(match)
                    return match
                self._blocked[rank] = (source, tag)
                self._check_deadlock()
                if self._dead:
                    continue
                self._cond.wait()
                self._blocked.pop(rank, None)

    def probe(self, rank: int, source: int, tag: int) -> bool:
        with self._cond:
            return any(e.matches(source, tag) for e in self._pending[rank])

    # -- barrier -----------------------------------------------------------------

    def barrier(self, rank: int) -> None:
        with self._cond:
            gen = self._barrier_gen
            self._barrier_count += 1
            if self._barrier_count == self.size - len(self._done):
                self._barrier_count = 0
                self._barrier_gen += 1
                # waiters of this generation are released *now*; drop them
                # from the blocked set so a racing mark_done cannot count
                # a released-but-not-yet-scheduled waiter as deadlocked.
                want = (ANY_SOURCE, -barrier_tag(gen))
                self._blocked = {
                    r: w for r, w in self._blocked.items() if w != want
                }
                self._cond.notify_all()
                return
            self._blocked[rank] = (ANY_SOURCE, -barrier_tag(gen))
            self._check_deadlock()
            while self._barrier_gen == gen and not self._dead:
                self._cond.wait()
            self._blocked.pop(rank, None)
            if self._barrier_gen == gen and self._dead:
                raise DeadlockError(f"deadlock at barrier (rank {rank})")


def barrier_tag(gen: int) -> int:
    """Pseudo-tag used only for deadlock bookkeeping of barriers."""
    return 1_000_000 + gen


#: User point-to-point tags must stay below this; each collective call
#: consumes one tag above it.
COLLECTIVE_TAG_BASE: int = 10_000_000


@dataclass
class Request:
    """Handle for a non-blocking operation."""

    _resolve: Callable[[], tuple[Any, Status | None]]
    _result: tuple[Any, Status | None] | None = None
    _done: bool = False

    def wait(self) -> Any:
        """Complete the operation and return its value (None for sends)."""
        if not self._done:
            self._result = self._resolve()
            self._done = True
        return self._result[0]

    def test(self) -> bool:
        """True once the operation has been completed by :meth:`wait`."""
        return self._done


class SimComm:
    """One rank's endpoint of the simulated communicator."""

    def __init__(self, rank: int, fabric: Fabric) -> None:
        if not 0 <= rank < fabric.size:
            raise CommunicatorError(f"rank {rank} outside job of size {fabric.size}")
        self.rank = rank
        self.fabric = fabric
        #: per-rank collective sequence number.  Collectives must be
        #: called in the same order on every rank (the usual SPMD rule);
        #: the sequence then gives each collective a unique tag, so two
        #: back-to-back gathers with ANY_SOURCE cannot steal each other's
        #: messages.
        self._coll_seq = 0

    @property
    def size(self) -> int:
        return self.fabric.size

    # -- point to point ------------------------------------------------------------

    def send(self, data: Any, dest: int, tag: int = 0) -> None:
        """Buffered send: the payload is snapshotted and delivery is
        asynchronous (the common-case semantics of MPI_Send for the
        message sizes Sweep3D exchanges)."""
        if tag < 0:
            raise CommunicatorError(f"tags must be >= 0, got {tag}")
        self.fabric.post(
            Envelope(self.rank, dest, tag, freeze_payload(data))
        )

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, status: bool = False
    ) -> Any:
        """Blocking receive; returns the payload (and a :class:`Status`
        when ``status=True``)."""
        env = self.fabric.take(self.rank, source, tag)
        if status:
            return env.payload, Status(env.source, env.tag, payload_count(env.payload))
        return env.payload

    def isend(self, data: Any, dest: int, tag: int = 0) -> Request:
        self.send(data, dest, tag)
        return Request(lambda: (None, None), _result=(None, None), _done=True)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return Request(lambda: (self.recv(source, tag), None))

    def sendrecv(
        self, data: Any, dest: int, recv_source: int, tag: int = 0
    ) -> Any:
        """Combined send+receive (deadlock-free neighbour exchange)."""
        self.send(data, dest, tag)
        return self.recv(recv_source, tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        return self.fabric.probe(self.rank, source, tag)

    # -- collectives ---------------------------------------------------------------

    def barrier(self) -> None:
        self.fabric.barrier(self.rank)

    def _collective_tag(self) -> int:
        tag = COLLECTIVE_TAG_BASE + self._coll_seq
        self._coll_seq += 1
        return tag

    def bcast(self, data: Any, root: int = 0) -> Any:
        tag = self._collective_tag()
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(data, dest, tag)
            return data
        return self.recv(root, tag)

    def gather(self, data: Any, root: int = 0) -> list[Any] | None:
        tag = self._collective_tag()
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = freeze_payload(data)
            for _ in range(self.size - 1):
                payload, status = self.recv(ANY_SOURCE, tag, status=True)
                out[status.source] = payload
            return out
        self.send(data, root, tag)
        return None

    def reduce(self, data: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        gathered = self.gather(data, root)
        if self.rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, data: Any, op: Callable[[Any, Any], Any]) -> Any:
        return self.bcast(self.reduce(data, op, root=0), root=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimComm(rank={self.rank}, size={self.size})"
