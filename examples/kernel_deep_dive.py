#!/usr/bin/env python
"""Sec. 5.1 deep dive: the SIMDized SPE kernel under the microscope.

Shows (1) the functional side -- the vectorized kernel producing
bit-identical fluxes to the NumPy reference on a block of I-lines --
and (2) the timing side: the emitted instruction stream replayed
through the dual-issue SPU pipeline model, reproducing the paper's
efficiency story (64 % of DP peak, fixups ~3x slower, ~25 % SP, low
dual-issue rate, and why: the 7-cycle double-precision issue
restriction).

Usage:  python examples/kernel_deep_dive.py
"""

from __future__ import annotations

import numpy as np

from repro.cell.isa import OpClass
from repro.core.spe_kernel import (
    cells_per_invocation,
    kernel_cycle_report,
    simd_execute_block,
)
from repro.sweep.pipelining import LineBlock, numpy_line_executor


def functional_demo() -> None:
    rng = np.random.default_rng(2007)
    L, it = 10, 12
    block = LineBlock(
        octant=0, diagonal=0,
        lines=[(l, 0, 0) for l in range(L)], angles=[0] * L,
        source=rng.random((L, it)) * 0.1,
        sigma_t=6.0,
        phi_i=rng.random(L) * 4.0,      # strong inflows: fixups will fire
        phi_j=rng.random((L, it)),
        phi_k=rng.random((L, it)),
        cx=rng.random(L) + 0.1,
        cy=rng.random(L) + 0.1,
        cz=rng.random(L) + 0.1,
        fixup=True,
    )
    ref_block = LineBlock(**{
        **block.__dict__,
        "phi_j": block.phi_j.copy(),
        "phi_k": block.phi_k.copy(),
    })
    psi_ref, pi_ref, fix_ref = numpy_line_executor(ref_block)
    psi_simd, pi_simd, fix_simd = simd_execute_block(block)
    print(f"block: {L} I-lines x {it} cells, fixups on")
    print(f"  reference fixups: {fix_ref}, SIMD fixups: {fix_simd}")
    print(f"  psi bitwise equal:  {np.array_equal(psi_ref, psi_simd)}")
    print(f"  faces bitwise equal: "
          f"{np.array_equal(ref_block.phi_j, block.phi_j)}")


def timing_demo() -> None:
    print("\npipeline statistics of one steady-state inner iteration")
    print("(4 logical vectorization threads, nm = 4 moments)\n")
    header = (f"{'kernel':14s} {'cells':>5s} {'cycles':>7s} {'flops':>6s} "
              f"{'cyc/cell':>8s} {'dual':>5s} {'eff':>7s}")
    print(header)
    for name, fixup, double in (
        ("DP", False, True),
        ("DP + fixups", True, True),
        ("SP", False, False),
    ):
        r = kernel_cycle_report(nm=4, fixup=fixup, double=double)
        cells = cells_per_invocation(double)
        eff = r.efficiency(double)
        print(f"{name:14s} {cells:5d} {r.cycles:7d} {r.flops:6d} "
              f"{r.cycles / cells:8.1f} {r.dual_issues:5d} {eff:7.1%}")

    r = kernel_cycle_report(nm=4, fixup=False, double=True)
    dp_ops = r.dp_instructions
    print(f"\nwhy 64%: {dp_ops} DP instructions x 7-cycle issue interval = "
          f"{dp_ops * 7} of the {r.cycles} cycles")
    print(f"chip throughput at this efficiency: {r.gflops() * 8:.1f} Gflop/s "
          f"(paper: 9.3 Gflop/s)")
    # instruction mix of the measured step
    loads = sum(1 for i in r.records if i.instruction.opclass is OpClass.LOAD)
    stores = sum(1 for i in r.records if i.instruction.opclass is OpClass.STORE)
    print(f"instruction mix: {r.instructions} total, {dp_ops} DP-even, "
          f"{loads} loads, {stores} stores")


def schedule_demo() -> None:
    from repro.cell.schedule_view import format_schedule, occupancy_histogram

    r = kernel_cycle_report(nm=4, fixup=False, double=True)
    print("\nfirst 24 cycles of the schedule:")
    print(format_schedule(r, max_cycles=24))
    hist = occupancy_histogram(r)
    total = sum(hist.values())
    print("\noccupancy:")
    for name, cycles in hist.items():
        print(f"  {name:17s} {cycles:5d} cycles ({cycles / total:5.1%})")


def register_demo() -> None:
    from repro.cell.registers import kernel_pressure

    print("\nregister pressure (128-register file, 120 usable):")
    for threads in (1, 2, 4, 8):
        rep = kernel_pressure(nm=4, fixup=False, logical_threads=threads)
        verdict = "fits" if rep.fits else f"needs {rep.spills_needed} spills"
        print(f"  {threads} logical threads: {rep.max_live:3d} live -> {verdict}")
    print("  -> four threads is the most unrolling the register file allows:")
    print("     the paper's choice is architecturally forced, not a tuning whim")


if __name__ == "__main__":
    functional_demo()
    timing_demo()
    schedule_demo()
    register_demo()
