#!/usr/bin/env python
"""Working with deck files and the roofline analysis.

Loads the bundled example decks, runs the shielding study through the
solver, demonstrates the reflective-octant symmetry trick, and places
the benchmark kernel on the Cell BE roofline -- the generalized form of
the paper's Sec. 6 bounds argument.

Usage:  python examples/deck_workflows.py
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.levels import Precision
from repro.perf import measured_cell_config, roofline_analyze
from repro.sweep import SerialSweep3D, load_deck
from repro.sweep.geometry import Grid

DECKS = pathlib.Path(__file__).parent / "decks"


def shielding_study() -> None:
    """Deep penetration: a localized source in a thick shield.  Diamond
    difference drives downstream fluxes negative without fixups; with
    them the attenuated flux stays physical."""
    deck = load_deck(DECKS / "shielding.deck")
    print(f"shielding deck: {deck.grid.shape}, sigma_t={deck.sigma_t}, "
          f"S{deck.sn}, source box {deck.source_box}, "
          f"fixups={'on' if deck.fixup else 'off'}")
    msrc = np.zeros((deck.nm, *deck.grid.shape))
    msrc[0] = deck.source_field()
    solver = SerialSweep3D(deck)
    flux, tally = solver.sweep_once(msrc)
    flux_nofix, _ = SerialSweep3D(deck.with_(fixup=False)).sweep_once(msrc)
    attenuation = flux[0, 1, 1, 1] / flux[0, -1, -1, -1]
    print(f"  attenuation source->far corner: {attenuation:.2e}x")
    print(f"  fixups applied: {tally.fixups}")
    print(f"  min flux with fixups:    {flux[0].min():.3e}  (physical)")
    print(f"  min flux without fixups: {flux_nofix[0].min():.3e}  (negative!)")
    assert flux[0].min() >= 0.0 and flux_nofix[0].min() < 0.0


def symmetry_trick() -> None:
    octant = load_deck(DECKS / "symmetric_octant.deck")
    full = octant.with_(
        grid=Grid.cube(octant.grid.nx * 2),
        reflect_low=(False, False, False),
        mk=octant.mk,
    )
    r_full = SerialSweep3D(full).solve()
    r_oct = SerialSweep3D(octant).solve()
    n = octant.grid.nx
    corner = r_full.flux[:, n:, n:, n:]
    err = np.max(np.abs(corner - r_oct.flux)) / np.max(np.abs(corner))
    print(f"\nreflective-octant symmetry: {octant.grid.shape} solve vs "
          f"{full.grid.shape} corner, rel err {err:.2e}")
    print(f"  (an {8}x cheaper solve for symmetric problems)")


def roofline() -> None:
    deck = load_deck(DECKS / "benchmark50.deck")
    cfg = measured_cell_config()
    dp = roofline_analyze(deck, cfg, label="DP kernel")
    sp = roofline_analyze(
        deck, cfg.with_(precision=Precision.SINGLE), label="SP kernel"
    )
    print("\nroofline position (Sec. 6 generalized):")
    for p in (dp, sp):
        regime = "memory-bound" if p.memory_bound else "compute-bound"
        print(f"  {p.label}: intensity {p.intensity:.2f} flop/B "
              f"(ridge {p.ridge_intensity:.2f}) -> {regime}; "
              f"achieves {p.achieved_flops / 1e9:.2f} Gflop/s = "
              f"{p.roof_fraction:.0%} of its roof")


if __name__ == "__main__":
    shielding_study()
    symmetry_trick()
    roofline()
