#!/usr/bin/env python
"""Walk the paper's Figure-5 optimization ladder.

For each rung: what changed, which of the five parallelism levels it
engages, the model's predicted 50-cubed time, and the paper's measured
time.  Then verifies functionally (on a small deck) that every rung's
configuration still computes the exact reference answer -- optimizations
that break the physics don't count.

Usage:  python examples/optimization_ladder.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CellSweep3D, LADDER, ladder_times
from repro.perf import ascii_bars
from repro.sweep import SerialSweep3D, benchmark_deck, small_deck


def main() -> None:
    deck = benchmark_deck(fixup=False)
    series = ladder_times(deck)

    print("Figure 5 - the optimization ladder (50-cubed)\n")
    prev = None
    for stage, seconds in series:
        gain = f"  ({prev / seconds:4.2f}x)" if prev else ""
        print(f"{stage.key:14s} {seconds:6.2f} s  paper {stage.paper_seconds:5.2f} s{gain}")
        print(f"               {stage.description}")
        if stage.on_spes:
            levels = [k for k, v in stage.config.levels_active().items() if v]
            print(f"               levels: {', '.join(levels)}")
        prev = seconds
        print()

    print(ascii_bars([s.key for s, _ in series], [t for _, t in series]))

    # -- functional verification of every SPE rung -----------------------
    print("\nverifying every rung computes the reference answer ...")
    tiny = small_deck(n=5, sn=4, nm=2, iterations=2, mk=5)
    reference = SerialSweep3D(tiny).solve()
    for stage, _ in series:
        if not stage.on_spes:
            continue
        result = CellSweep3D(tiny, stage.config).solve()
        ok = np.array_equal(result.flux, reference.flux)
        print(f"  {stage.key:14s} bitwise equal: {ok}")
        assert ok


if __name__ == "__main__":
    main()
