#!/usr/bin/env python
"""Diffusion synthetic acceleration: taming high scattering ratios.

Source iteration converges like c^k -- at c = 0.98 that is hundreds of
transport sweeps.  The Sweep3D code family pairs the sweep with a cheap
diffusion solve for the iteration error (DSA).  This example sweeps the
scattering ratio and compares iteration counts with and without DSA,
and shows the per-sweep cost asymmetry that makes it worthwhile on the
Cell: a sweep moves gigabytes through the MIC, the diffusion solve is a
single factorized back-substitution.

Usage:  python examples/dsa_acceleration.py
"""

from __future__ import annotations

import time

from repro.sweep import SerialSweep3D, small_deck
from repro.sweep.dsa import accelerated_solve


def main() -> None:
    base = small_deck(n=8, sn=4, nm=1, iterations=800, mk=2)
    print(f"deck: {base.grid.shape}, S{base.sn}, epsilon 1e-6\n")
    print(f"{'c':>6s} {'plain sweeps':>13s} {'DSA sweeps':>11s} {'speedup':>8s}")
    for c in (0.3, 0.6, 0.9, 0.95, 0.98):
        deck = base.with_(scattering_ratio=c)
        plain = SerialSweep3D(deck.with_(epsilon=1e-6)).solve()
        _, dsa_iters, _ = accelerated_solve(deck, epsilon=1e-6)
        print(f"{c:6.2f} {plain.iterations:13d} {dsa_iters:11d} "
              f"{plain.iterations / dsa_iters:7.1f}x")

    deck = base.with_(scattering_ratio=0.98)
    t0 = time.perf_counter()
    SerialSweep3D(deck.with_(iterations=1)).solve()
    sweep_cost = time.perf_counter() - t0
    from repro.sweep.dsa import DSAAccelerator
    import numpy as np

    dsa = DSAAccelerator(deck)
    phi = np.ones(deck.grid.shape)
    t0 = time.perf_counter()
    dsa.correct(phi * 0.9, phi)
    solve_cost = time.perf_counter() - t0
    print(f"\nper-iteration cost: transport sweep {sweep_cost * 1e3:.1f} ms "
          f"vs diffusion solve {solve_cost * 1e3:.2f} ms "
          f"({sweep_cost / solve_cost:.0f}x cheaper)")


if __name__ == "__main__":
    main()
