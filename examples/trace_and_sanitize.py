#!/usr/bin/env python
"""Watch the simulated Cell run, then catch a planted DMA hazard.

Part 1 traces the Figure-5 ladder's double-buffered rung on a small
deck: every MFC command, memory-bank access, sync round-trip and
kernel invocation lands on one event bus, which is exported as a
Perfetto-loadable Chrome trace and summarized per track (utilization,
DMA/compute overlap potential, MFC queue depth).  The sanitizer
replays the stream and confirms the double-buffering discipline holds:
no local-store bytes are touched while DMA into them is in flight.

Part 2 breaks the discipline on purpose -- a second GET issued into
the *same* buffer set before the first tag drained, the classic bug
double buffering exists to prevent -- and shows the sanitizer flag it.

Usage:  python examples/trace_and_sanitize.py [trace.json]
"""

from __future__ import annotations

import sys

from repro.cell.dma import DMAKind
from repro.core import CellSweep3D
from repro.core.optimizations import stage
from repro.core.streaming import GET_TAGS, StagedLine
from repro.sweep import small_deck
from repro.trace import (
    aggregate_stats,
    format_hazards,
    sanitize,
    timeline_summary,
    write_chrome_trace,
)


def main() -> None:
    deck = small_deck(n=8, sn=4, nm=2, iterations=1, mk=2)

    # -- part 1: trace the ladder's double-buffered rung ------------------
    rung = stage("double-buffer")
    print(f"tracing rung {rung.key!r}: {rung.description}\n")
    solver = CellSweep3D(deck, rung.config.with_(trace=True))
    solver.solve()
    bus = solver.trace

    print(timeline_summary(bus))

    stats = aggregate_stats(bus)
    print("\nper-SPE double-buffering figure of merit:")
    for track, spe in sorted(stats["per_spe"].items()):
        print(f"  {track}: overlap potential {spe['overlap_fraction']:.1%} "
              f"(dma {spe['dma_cycles']:.0f}cy vs compute "
              f"{spe['compute_cycles']:.0f}cy), "
              f"MFC queue depth max {spe['queue_depth_max']}")

    hazards = sanitize(bus)
    print(f"\n{format_hazards(hazards)}")
    assert not hazards, "the disciplined configuration must be clean"

    if len(sys.argv) > 1:
        path = write_chrome_trace(sys.argv[1], bus)
        print(f"\nwrote {len(bus)} events to {path} "
              f"(open in https://ui.perfetto.dev)")

    # -- part 2: plant the bug double buffering prevents ------------------
    print("\nnow breaking the discipline on purpose:")
    print("  GET into buffer set 0 (tag 2), then a second GET into the "
          "same set\n  (tag 3) WITHOUT draining tag 2 first ...")
    broken = CellSweep3D(deck, rung.config.with_(trace=True))
    bufs = broken.buffers[0]

    def lines_at(k: int) -> list[StagedLine]:
        # one line per program: this rung predates DMA lists, so each
        # line is 8 individual commands and both programs fit the
        # 16-entry MFC queue at once -- the hazard, not back-pressure,
        # is what we are demonstrating.
        return [
            StagedLine(mm=0, kk=k, j_o=0, j_g=0, k_g=k, angle=0,
                       reverse_i=False)
        ]

    bufs.issue(
        bufs._program(broken.host, lines_at(0), DMAKind.GET, 0, GET_TAGS[0]),
        GET_TAGS[0],
    )
    # the bug: rotate into the same set while tag 2 is still in flight
    bufs.issue(
        bufs._program(broken.host, lines_at(1), DMAKind.GET, 0, GET_TAGS[1]),
        GET_TAGS[1],
    )

    hazards = sanitize(broken.trace)
    print()
    print(format_hazards(hazards))
    assert hazards, "the planted hazard must be caught"
    assert all(h.kind == "reuse-before-drain" for h in hazards)
    print("\nthe sanitizer caught the planted race -- on real hardware "
          "this reads\ntorn local-store bytes silently; here it is a "
          "diagnosis, not wrong flux.")


if __name__ == "__main__":
    main()
