#!/usr/bin/env python
"""Quickstart: solve a transport problem on the simulated Cell BE.

Runs a small Sweep3D problem three ways -- the serial reference solver,
the KBA wavefront over a simulated MPI job, and the Cell-simulated
implementation with all five parallelism levels -- verifies they agree
bit for bit, and prints the calibrated timing prediction for the paper's
50-cubed benchmark.

Usage:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CellSweep3D
from repro.mpi import KBASweep3D
from repro.perf import bandwidth_bound, compute_bound, measured_cell_config, predict
from repro.sweep import SerialSweep3D, benchmark_deck, small_deck, verify


def main() -> None:
    # -- a test-sized problem: 8^3 cells, S4 angles, 2 moments ----------
    deck = small_deck(n=8, sn=4, nm=2, iterations=4, mk=2)
    print(f"deck: {deck.grid.shape} cells, S{deck.sn}, nm={deck.nm}, "
          f"{deck.iterations} iterations")

    serial = SerialSweep3D(deck).solve()
    print(f"serial:   total scalar flux = {serial.total_scalar_flux():.6f}, "
          f"leakage = {serial.tally.leakage:.6f}")

    kba = KBASweep3D(deck, P=2, Q=2).solve()
    print(f"KBA 2x2:  bitwise equal to serial: "
          f"{np.array_equal(kba.flux, serial.flux)}")

    cell = CellSweep3D(deck).solve()
    print(f"Cell BE:  bitwise equal to serial: "
          f"{np.array_equal(cell.flux, serial.flux)}")

    balance = verify.balance_residual(deck, serial)
    print(f"particle balance residual: {balance:.2e} "
          f"(source iteration truncation)")

    # -- the paper's benchmark configuration ------------------------------
    bench = benchmark_deck(fixup=False)
    config = measured_cell_config()
    report = predict(bench, config)
    print("\n50-cubed benchmark prediction (measured configuration):")
    print(f"  run time          {report.seconds:6.2f} s   (paper: 1.33 s)")
    print(f"  DMA traffic       {report.dma_bytes / 1e9:6.1f} GB  (paper: 17.6 GB)")
    print(f"  bandwidth bound   {bandwidth_bound(bench, config):6.2f} s   (paper: 0.70 s)")
    print(f"  compute bound     {compute_bound(bench, config):6.2f} s   (paper: 0.68 s)")
    print(f"  achieved          {report.achieved_gflops:6.2f} Gflop/s")


if __name__ == "__main__":
    main()
