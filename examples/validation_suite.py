#!/usr/bin/env python
"""One-shot validation report: every correctness pillar in one run.

Runs the full chain of invariants the reproduction rests on and prints
a pass/fail report:

1. physics      — particle balance, positivity, symmetry, the
                  reflective-octant identity;
2. equivalence  — serial == tile == KBA == Cell-simulated, bitwise;
3. kernel       — SIMD kernel bit-equal to the reference; register
                  file and code store respected;
4. timing model — Sec. 5.1 efficiencies in band; closed-form model vs
                  event simulation within tolerance.

Usage:  python examples/validation_suite.py
"""

from __future__ import annotations

import numpy as np

CHECKS: list[tuple[str, bool, str]] = []


def check(name: str, ok: bool, detail: str = "") -> None:
    CHECKS.append((name, bool(ok), detail))
    print(f"  [{'PASS' if ok else 'FAIL'}] {name}" + (f"  ({detail})" if detail else ""))


def physics() -> None:
    print("physics invariants:")
    from repro.sweep import SerialSweep3D, small_deck, verify
    from repro.sweep.geometry import Grid

    absorber = small_deck(n=8, sn=4, nm=1, iterations=1, fixup=False).with_(
        scattering_ratio=0.0
    )
    res = SerialSweep3D(absorber).solve()
    bal = verify.balance_residual(absorber, res)
    check("particle balance (pure absorber)", bal < 1e-12, f"residual {bal:.1e}")

    deck = small_deck(n=6, sn=4, nm=2, iterations=3)
    res = SerialSweep3D(deck).solve()
    check("flux positivity", verify.positivity_violation(res) == 0.0)
    sym = verify.symmetry_error(res, transpose=False)
    check("axis-flip symmetry", sym < 1e-12, f"err {sym:.1e}")

    full = small_deck(n=8, sn=4, nm=1, iterations=3, mk=2)
    half = full.with_(grid=Grid.cube(4), mk=2, reflect_low=(True,) * 3)
    rf = SerialSweep3D(full).solve()
    rh = SerialSweep3D(half).solve()
    err = float(np.max(np.abs(rf.flux[:, 4:, 4:, 4:] - rh.flux)))
    check("reflective-octant identity", err < 1e-12, f"max diff {err:.1e}")


def equivalence() -> None:
    print("engine equivalence (bitwise):")
    from repro.core import CellSweep3D, MachineConfig
    from repro.mpi import KBASweep3D
    from repro.sweep import SerialSweep3D, small_deck

    deck = small_deck(n=6, sn=4, nm=2, iterations=2, mk=3).with_(
        source_box=(0, 3, 0, 6, 0, 6),
        material_box=(3, 6, 0, 6, 0, 6),
        material_sigma_t=4.0,
    )
    ref = SerialSweep3D(deck).solve()
    tile = SerialSweep3D(deck, method="tile").solve()
    kba = KBASweep3D(deck, P=2, Q=2).solve()
    cell_solver = CellSweep3D(deck, MachineConfig())
    cell = cell_solver.solve()
    check("tile sweep == hyperplane", np.array_equal(tile.flux, ref.flux))
    check("KBA 2x2 == serial", np.array_equal(kba.flux, ref.flux))
    check("Cell-simulated == serial", np.array_equal(cell.flux, ref.flux))
    traffic = cell_solver.chip.traffic()
    check("DMA traffic recorded", traffic.total_bytes > 0,
          f"{traffic.total_bytes / 1e6:.1f} MB")


def kernel() -> None:
    print("SPE kernel:")
    from repro.cell.registers import kernel_code_bytes, kernel_pressure
    from repro.core.spe_kernel import kernel_cycle_report, simd_execute_block
    from repro.sweep.pipelining import LineBlock, numpy_line_executor

    rng = np.random.default_rng(1)
    L, it = 9, 7
    mk_block = lambda: LineBlock(
        octant=0, diagonal=0, lines=[(l, 0, 0) for l in range(L)],
        angles=[0] * L, source=rng.random((L, it)) * 0.1, sigma_t=6.0,
        phi_i=rng.random(L) * 4, phi_j=rng.random((L, it)),
        phi_k=rng.random((L, it)), cx=rng.random(L) + 0.1,
        cy=rng.random(L) + 0.1, cz=rng.random(L) + 0.1, fixup=True,
    )
    rng = np.random.default_rng(1)
    a = mk_block()
    rng = np.random.default_rng(1)
    b = mk_block()
    psi_a, _, fx_a = numpy_line_executor(a)
    psi_b, _, fx_b = simd_execute_block(b)
    check("SIMD kernel bit-equal (fixups firing)",
          np.array_equal(psi_a, psi_b) and fx_a == fx_b,
          f"{fx_a} fixups")
    press = kernel_pressure(logical_threads=4)
    check("4-thread kernel fits 128 registers", press.fits,
          f"{press.max_live} live")
    code = kernel_code_bytes()
    check("kernel code fits LS reservation", code <= 24 * 1024,
          f"{code} B of 24 KB")
    dp = kernel_cycle_report(nm=4, fixup=False)
    check("DP efficiency ~64% (paper: 64%)",
          abs(dp.efficiency(True) - 0.64) < 0.05,
          f"{dp.efficiency(True):.1%}")


def timing() -> None:
    print("timing model:")
    from repro.perf.eventsim import block_seconds, closed_form_block_seconds
    from repro.perf.model import bandwidth_bound, predict
    from repro.perf.processors import measured_cell_config
    from repro.sweep.input import benchmark_deck

    deck = benchmark_deck(fixup=False)
    cfg = measured_cell_config()
    ev = block_seconds(deck, cfg)
    cf = closed_form_block_seconds(deck, cfg)
    check("closed form vs event sim", 0.5 < cf / ev < 1.8,
          f"ratio {cf / ev:.2f}")
    r = predict(deck, cfg)
    check("run time above bandwidth bound",
          r.seconds > bandwidth_bound(deck, cfg),
          f"{r.seconds:.2f}s vs {bandwidth_bound(deck, cfg):.2f}s bound")


def main() -> None:
    physics()
    equivalence()
    kernel()
    timing()
    failed = [name for name, ok, _ in CHECKS if not ok]
    print(f"\n{len(CHECKS) - len(failed)}/{len(CHECKS)} checks passed")
    if failed:
        raise SystemExit(f"FAILED: {failed}")


if __name__ == "__main__":
    main()
