#!/usr/bin/env python
"""The process-level layer: KBA wavefront sweeps over a simulated MPI job.

Reproduces Figure 1's picture: a 3x2 process grid sweeping a tile each,
exchanging I- and J-face fluxes with neighbours per octant, K-plane
block and angle block, then reassembling the global solution -- which
must equal the serial solve exactly.  Also demonstrates the runtime's
exact deadlock detection on a deliberately wrong receive.

Usage:  python examples/mpi_wavefront.py
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeadlockError
from repro.mpi import KBASweep3D, run_ranks
from repro.sweep import SerialSweep3D, small_deck


def wavefront_demo() -> None:
    deck = small_deck(n=9, sn=4, nm=2, iterations=3, mk=3)
    print(f"deck: {deck.grid.shape} cells, S{deck.sn}, "
          f"{deck.iterations} iterations")

    serial = SerialSweep3D(deck).solve()
    for P, Q in ((1, 1), (3, 2), (2, 3), (3, 3)):
        kba = KBASweep3D(deck, P=P, Q=Q)
        result = kba.solve()
        tiles = [kba.plan(r) for r in range(kba.cart.size)]
        shapes = {f"({t.nx}x{t.ny})" for t in tiles}
        equal = np.array_equal(result.flux, serial.flux)
        print(f"  {P}x{Q}: tiles {sorted(shapes)}, "
              f"bitwise equal to serial: {equal}")
        assert equal


def deadlock_demo() -> None:
    print("\nexact deadlock detection (no timeouts):")

    def broken(comm):
        # every rank receives from its right neighbour, nobody sends:
        # the classic reversed-octant wavefront bug.
        comm.recv(source=(comm.rank + 1) % comm.size, tag=0)

    try:
        run_ranks(4, broken)
    except DeadlockError as exc:
        print(f"  caught: {exc}")


if __name__ == "__main__":
    wavefront_demo()
    deadlock_demo()
