#!/usr/bin/env python
"""Time-dependent transport: the evolution Sec. 3 describes.

"The analysis computes the evolution of the flux of particles over
time" -- this example switches a uniform source on at t = 0 in a
scattering cube and follows the flux rise to steady state with the
backward-Euler driver, showing the L-stable monotone approach and the
velocity dependence of the transient.

Usage:  python examples/transient.py
"""

from __future__ import annotations

from repro.sweep import small_deck
from repro.sweep.timestep import TimeDependentSweep3D


def main() -> None:
    deck = small_deck(n=6, sn=4, nm=1, iterations=10, mk=3).with_(
        scattering_ratio=0.4
    )
    td = TimeDependentSweep3D(deck, velocity=1.0, dt=0.5)
    steady = td.steady_state().total_scalar_flux()
    transient = td.run(14)

    print(f"source switched on at t=0; steady-state total flux = {steady:.2f}\n")
    print(f"{'t':>6s} {'total flux':>12s} {'% of steady':>12s}  rise")
    for step, total in zip(transient.steps, transient.total_flux_history):
        frac = total / steady
        bar = "#" * int(round(40 * frac))
        print(f"{step.time:6.2f} {total:12.3f} {frac:12.1%}  {bar}")

    print("\nvelocity dependence (flux fraction after t = 1.0):")
    for v in (0.25, 1.0, 4.0):
        tdv = TimeDependentSweep3D(deck, velocity=v, dt=0.5)
        frac = tdv.run(2).total_flux_history[-1] / steady
        print(f"  v = {v:4.2f}: {frac:6.1%}")


if __name__ == "__main__":
    main()
