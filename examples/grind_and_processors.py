#!/usr/bin/env python
"""Figures 9 and 11: problem-size scaling and processor comparison.

Plots (as ASCII) the grind time across cube sizes, showing the plateau
above edge 25 and the load-balance dents from the chunks-of-4 x 8-SPEs
scheduling grain, then prints the Figure 11 processor comparison.

Usage:  python examples/grind_and_processors.py
"""

from __future__ import annotations

from repro.perf import comparison_table, grind_curve, plateau
from repro.perf.report import ascii_bars
from repro.sweep import benchmark_deck


def grind_demo() -> None:
    curve = grind_curve(cubes=list(range(5, 61, 1)))
    level = plateau(curve, threshold_cube=25)
    print("Figure 9 - grind time vs cube size "
          f"(plateau above 25: {level:.1f} ns/visit)\n")
    peak = max(p.grind_ns for p in curve)
    for p in curve:
        if p.cube % 2 and p.cube > 11:
            continue  # thin the printout
        bar = "#" * int(round(40 * p.grind_ns / peak))
        marker = " <- dent region" if p.mean_imbalance < 1.25 and p.cube > 25 else ""
        print(f"  {p.cube:3d}  {p.grind_ns:6.1f} ns |{bar}{marker}")
    small = [p for p in curve if p.cube <= 10]
    print(f"\nsmall cubes starve the SPEs: {small[0].grind_ns / level:.1f}x "
          f"the plateau at edge {small[0].cube}")


def processors_demo() -> None:
    deck = benchmark_deck(fixup=False)
    rows = comparison_table(deck)
    print("\nFigure 11 - processor comparison (50-cubed)\n")
    print(ascii_bars([n for n, _, _ in rows], [t for _, t, _ in rows]))
    cell = rows[0][1]
    for name, seconds, speedup in rows[1:]:
        print(f"  Cell is {speedup:5.1f}x faster than {name}")
    del cell


if __name__ == "__main__":
    grind_demo()
    processors_demo()
